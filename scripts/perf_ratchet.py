"""Performance ratchet: fail CI when the cold compile path regresses.

The repository commits a measured baseline, ``BENCH_compile_cold.json``
(seeded from ``benchmarks/bench_fig18_compile_time.py --quick``), which
records the cold-pass wall time and allocator-solve count of the
standard compile-time smoke.  CI re-measures and compares::

    PYTHONPATH=src python benchmarks/bench_fig18_compile_time.py \
        --quick --json-out BENCH_compile_cold_now.json
    python scripts/perf_ratchet.py BENCH_compile_cold_now.json

Two independent checks, because they fail for different reasons:

* **Solve count** (exact) — ``allocator_solves_cold`` is deterministic:
  the same models on the same chip enumerate the same allocation
  windows.  Any increase means the compiler started solving more
  sub-problems (a cache-key regression, a lost dedup) and fails the
  ratchet outright, with no tolerance.
* **Wall time** (tolerance-gated) — cold ``cold_seconds`` may exceed the
  baseline by at most ``--tolerance`` (default 20%).  CI machines are
  noisy, so the tolerance is generous; a vectorisation or solver-path
  regression shows up far above it.

The warm pass is already asserted elsewhere (hit rate >= 95%, zero warm
solves); the ratchet only guards the cold path the ISSUE-6 vectorisation
sped up.  To *advance* the ratchet after a deliberate improvement,
re-seed the baseline file with the bench command above and commit it.

The script also understands replay reports: a measurement whose
``schema`` is ``repro-replay-report/1`` (``repro replay --json-out``) is
compared against the committed ``BENCH_replay.json`` instead.  Replay
metrics are *deterministic* — same trace seed, same chip, same options
produce bit-identical scheduling — so the ``hardware``, ``trace`` and
``metrics`` blocks must match the baseline exactly, with no tolerance
(wall time and cache hits live under ``compile``, which is ignored).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_compile_cold.json"
DEFAULT_REPLAY_BASELINE = REPO_ROOT / "BENCH_replay.json"

#: Fields the compile ratchet needs from both records.
REQUIRED = ("cold_seconds", "allocator_solves_cold")

#: Schema tag of repro.sim.replay reports (kept in sync with REPORT_SCHEMA).
REPLAY_SCHEMA = "repro-replay-report/1"

#: Replay-report blocks that must match the baseline bit-for-bit.
REPLAY_EXACT_BLOCKS = ("hardware", "trace", "metrics")


def load_json(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_record(path: Path) -> dict:
    record = load_json(path)
    missing = [field for field in REQUIRED if field not in record]
    if missing:
        raise SystemExit(f"error: {path} is missing fields: {', '.join(missing)}")
    return record


def check_replay(baseline: dict, measured: dict, baseline_name: str) -> int:
    """Exact comparison of one replay report against the committed one."""
    failures = []
    if measured.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: {measured.get('schema')!r} vs "
            f"{baseline.get('schema')!r} baseline"
        )
    for block in REPLAY_EXACT_BLOCKS:
        if measured.get(block) != baseline.get(block):
            failures.append(
                f"{block} block diverged from the baseline (replay is "
                f"deterministic; this is a real behaviour change):\n"
                f"    measured: {json.dumps(measured.get(block), sort_keys=True)}\n"
                f"    baseline: {json.dumps(baseline.get(block), sort_keys=True)}"
            )
    print(
        f"replay ratchet (baseline {baseline_name}): "
        f"{len(REPLAY_EXACT_BLOCKS)} exact blocks compared"
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        metrics = measured.get("metrics", {})
        print(
            "OK: replay metrics bit-identical to the baseline "
            f"(served {metrics.get('served')}, "
            f"p99 {metrics.get('latency_p99_ms')} ms)"
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "measurement", type=Path, help="fresh BENCH_*.json record to check"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            f"committed baseline record (default: {DEFAULT_BASELINE.name}, "
            f"or {DEFAULT_REPLAY_BASELINE.name} for replay reports)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional wall-time regression (default: 0.20 = +20%%)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    raw = load_json(args.measurement)
    if raw.get("schema") == REPLAY_SCHEMA:
        baseline_path = args.baseline or DEFAULT_REPLAY_BASELINE
        return check_replay(load_json(baseline_path), raw, baseline_path.name)

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = load_record(baseline_path)
    measured = load_record(args.measurement)

    base_solves = int(baseline["allocator_solves_cold"])
    now_solves = int(measured["allocator_solves_cold"])
    base_seconds = float(baseline["cold_seconds"])
    now_seconds = float(measured["cold_seconds"])
    budget = base_seconds * (1.0 + args.tolerance)

    print(
        f"perf ratchet (baseline {baseline_path.name}):\n"
        f"  solves : {now_solves} measured vs {base_solves} baseline (exact)\n"
        f"  wall   : {now_seconds:.3f} s measured vs {base_seconds:.3f} s "
        f"baseline (budget {budget:.3f} s = +{100 * args.tolerance:.0f}%)"
    )

    failures = []
    if now_solves > base_solves:
        failures.append(
            f"allocator_solves_cold regressed: {now_solves} > {base_solves} "
            "(solve counts are deterministic; this is a real regression)"
        )
    if now_seconds > budget:
        failures.append(
            f"cold_seconds regressed: {now_seconds:.3f} s > {budget:.3f} s "
            f"({base_seconds:.3f} s +{100 * args.tolerance:.0f}%)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: cold compile path within the ratchet")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
