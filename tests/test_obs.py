"""Tests for the observability layer (:mod:`repro.obs`).

Covers the tracer (nesting, threads, adoption), the metrics registry,
the exporters (Chrome trace well-formedness, JSONL, profile report), the
null objects' no-op contract, the pipeline/service/DSE/replay
instrumentation, and the CLI's quiet-by-default logging behaviour.
"""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.api import Session
from repro.cli import main
from repro.core.clock import ManualClock
from repro.obs import (
    NULL_METRICS,
    NULL_OBS,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Span,
    Tracer,
    chrome_trace_events,
    profile_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.service import CompileJob, CompileService


class TestTracer:
    def test_nested_spans_record_parentage_and_durations(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock, process="test")
        with tracer.span("outer", kind="pass"):
            clock.advance(1.0)
            with tracer.span("inner") as inner:
                clock.advance(0.5)
                inner.set(solver="milp")
        spans = tracer.spans()
        assert [s.name for s in spans] == ["outer", "inner"]
        outer, inner = spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.duration == pytest.approx(1.5)
        assert inner.duration == pytest.approx(0.5)
        assert outer.attrs == {"kind": "pass"}
        assert inner.attrs == {"solver": "milp"}

    def test_exception_annotates_and_closes_the_span(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "RuntimeError"

    def test_event_nests_under_the_active_span(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("parent") as parent:
            tracer.event("ping", detail=1)
        spans = tracer.spans()
        instant = next(s for s in spans if s.instant)
        assert instant.name == "ping"
        assert instant.parent_id == parent.span_id
        assert instant.duration == 0.0

    def test_explicit_parent_overrides_the_stack(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("batch") as batch:
            pass
        with tracer.span("job", parent=batch):
            pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["job"].parent_id == by_name["batch"].span_id

    def test_flush_empties_and_clear_drops(self):
        tracer = Tracer(clock=ManualClock())
        with tracer.span("a"):
            pass
        assert len(tracer.flush()) == 1
        assert tracer.spans() == []
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.spans() == []

    def test_adopt_remaps_ids_and_reroots_under_parent(self):
        worker = Tracer(clock=ManualClock(), process="pid-worker")
        with worker.span("job"):
            with worker.span("pass"):
                pass
        shipped = worker.flush()

        parent = Tracer(clock=ManualClock(), process="pid-main")
        with parent.span("batch") as batch:
            pass
        adopted = parent.adopt(shipped, parent=batch)
        by_name = {s.name: s for s in adopted}
        assert by_name["job"].parent_id == batch.span_id
        assert by_name["pass"].parent_id == by_name["job"].span_id
        assert by_name["job"].process == "pid-worker"
        own_ids = {s.span_id for s in parent.spans()}
        assert len(own_ids) == 3  # no id collisions after remap

    def test_thread_buffers_merge_into_a_well_formed_forest(self):
        tracer = Tracer()
        errors = []

        def work(index: int) -> None:
            try:
                with tracer.span(f"outer-{index}"):
                    with tracer.span("inner", index=index):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        spans = tracer.spans()
        assert len(spans) == 8
        by_id = {s.span_id: s for s in spans}
        # Every parent link resolves, and each inner's parent is its own
        # thread's outer (per-thread stacks never leak across threads).
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id
            if span.name == "inner":
                parent = by_id[span.parent_id]
                assert parent.name == f"outer-{span.attrs['index']}"
                assert parent.thread == span.thread


class TestMetrics:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.set_gauge("depth", 4.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("latency", value)
        snapshot = registry.to_dict()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"depth": 4.0}
        latency = snapshot["histograms"]["latency"]
        assert latency["count"] == 4
        assert latency["mean"] == pytest.approx(2.5)
        assert latency["min"] == 1.0 and latency["max"] == 4.0

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(99) == pytest.approx(99.0, abs=1.0)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_render_table_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.inc("solves")
        registry.observe("depth", 2.0)
        table = registry.render_table()
        assert "solves" in table and "depth" in table

    def test_null_objects_are_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_METRICS.enabled is False
        assert NULL_OBS.enabled is False
        with NULL_TRACER.span("nothing", key=1) as handle:
            handle.set(more=2)
        assert NULL_TRACER.spans() == []
        NULL_METRICS.inc("nothing")
        NULL_METRICS.observe("nothing", 1.0)
        assert NULL_METRICS.counter("nothing").value == 0

    def test_observability_create_is_enabled(self):
        obs = Observability.create()
        assert obs.enabled
        assert obs.tracer.enabled and obs.metrics.enabled


class TestExport:
    def _sample_spans(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock, process="test")
        with tracer.span("outer"):
            clock.advance(0.1)
            with tracer.span("inner"):
                clock.advance(0.2)
            tracer.event("marker")
            clock.advance(0.1)
        return tracer.spans()

    def test_chrome_trace_round_trip_validates(self):
        events = chrome_trace_events(self._sample_spans())
        totals = validate_chrome_trace({"traceEvents": events})
        assert totals["outer"] == pytest.approx(0.4)
        assert totals["inner"] == pytest.approx(0.2)

    def test_chrome_trace_has_metadata_and_instants(self):
        events = chrome_trace_events(self._sample_spans())
        phases = {event["ph"] for event in events}
        assert {"M", "B", "E", "i"} <= phases

    def test_write_chrome_trace_file(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", self._sample_spans())
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(payload)

    def test_span_jsonl_round_trips(self, tmp_path):
        spans = self._sample_spans()
        path = write_span_jsonl(tmp_path / "spans.jsonl", spans)
        restored = [
            Span.from_dict(json.loads(line))
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert restored == spans

    def test_validate_rejects_mis_nesting(self):
        bad = {
            "traceEvents": [
                {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0.0},
                {"ph": "B", "name": "b", "pid": 1, "tid": 1, "ts": 1.0},
                {"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 2.0},
            ]
        }
        with pytest.raises(ValueError, match="mis-nested"):
            validate_chrome_trace(bad)

    def test_validate_rejects_unclosed_spans(self):
        bad = {"traceEvents": [{"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 0.0}]}
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(bad)

    def test_validate_rejects_time_regression(self):
        bad = {
            "traceEvents": [
                {"ph": "B", "name": "a", "pid": 1, "tid": 1, "ts": 5.0},
                {"ph": "E", "name": "a", "pid": 1, "tid": 1, "ts": 1.0},
            ]
        }
        with pytest.raises(ValueError, match="regress"):
            validate_chrome_trace(bad)

    def test_profile_report_lists_spans_and_metrics(self):
        registry = MetricsRegistry()
        registry.inc("allocator.solves", 3)
        report = profile_report(self._sample_spans(), registry)
        assert "== profile: top spans ==" in report
        assert "outer" in report and "inner" in report
        assert "allocator.solves" in report


class TestPipelineInstrumentation:
    def test_pass_spans_match_pass_seconds(self):
        session = Session(hardware="small-test-chip", trace=True)
        program = session.compile("tiny-mlp")
        totals = validate_chrome_trace(
            {"traceEvents": chrome_trace_events(session.tracer.spans())}
        )
        for pass_name, seconds in program.stats["pass_seconds"].items():
            assert totals[pass_name] == pytest.approx(seconds, abs=5e-3)

    def test_pass_events_ride_on_stats(self):
        session = Session(hardware="small-test-chip")
        program = session.compile("tiny-mlp")
        events = program.stats["pass_events"]
        assert events and all(
            set(e) == {"pass", "kind", "seconds"} for e in events
        )

    def test_disabled_session_records_nothing(self):
        session = Session(hardware="small-test-chip")
        session.compile("tiny-mlp")
        assert session.tracer.spans() == []
        assert not session.obs.enabled

    def test_allocator_counters_mirror_solver_work(self):
        session = Session(hardware="small-test-chip", trace=True)
        session.compile("tiny-mlp")
        counters = session.metrics.to_dict()["counters"]
        assert counters["allocator.solves"] > 0
        assert counters["cache.stores"] > 0


class TestServiceInstrumentation:
    def test_thread_backend_forest_is_well_formed(self, tmp_path):
        obs = Observability.create()
        service = CompileService(backend="thread", max_workers=2, obs=obs)
        jobs = [
            CompileJob("tiny-mlp", hardware="small-test-chip", label=f"job-{i}")
            for i in range(3)
        ]
        results = service.compile_batch(jobs)
        assert all(result.ok for result in results)
        spans = obs.tracer.spans()
        by_id = {s.span_id: s for s in spans}
        batch = next(s for s in spans if s.name == "compile_batch")
        compiles = [s for s in spans if s.name == "compile"]
        assert len(compiles) == 3
        for span in compiles:
            assert span.parent_id == batch.span_id  # cross-thread edge
        for span in spans:
            assert span.parent_id is None or span.parent_id in by_id
        # The merged forest exports to a valid Chrome trace.
        assert validate_chrome_trace({"traceEvents": chrome_trace_events(spans)})

    def test_span_pickle_round_trip_is_bit_identical(self):
        span = Span(
            name="compile",
            start=1.25,
            end=2.5,
            span_id=7,
            parent_id=3,
            thread="MainThread@1",
            process="pid-123",
            attrs={"job": "bert", "ok": True},
            instant=False,
        )
        clone = pickle.loads(pickle.dumps(span))
        assert clone == span
        assert clone.to_dict() == span.to_dict()

    def test_process_backend_ships_spans_home(self):
        obs = Observability.create()
        service = CompileService(backend="process", max_workers=2, obs=obs)
        jobs = [
            CompileJob("tiny-mlp", hardware="small-test-chip", label=f"job-{i}")
            for i in range(2)
        ]
        results = service.compile_batch(jobs)
        assert all(result.ok for result in results)
        spans = obs.tracer.spans()
        batch = next(s for s in spans if s.name == "compile_batch")
        adopted = [s for s in spans if s.process != obs.tracer.process]
        assert adopted, "worker spans must be adopted into the batch tracer"
        worker_compiles = [s for s in adopted if s.name == "compile"]
        assert worker_compiles
        for span in worker_compiles:
            assert span.parent_id == batch.span_id  # re-rooted under the batch
        pass_names = {s.name for s in adopted}
        assert "pipeline" in pass_names and "segment" in pass_names

    def test_disabled_obs_process_backend_ships_no_spans(self):
        service = CompileService(backend="process", max_workers=2)
        results = service.compile_batch(
            [CompileJob("tiny-mlp", hardware="small-test-chip")]
        )
        assert results[0].ok and results[0].spans == []


class TestReplayAndDseInstrumentation:
    def _trace(self):
        from repro.sim.traces import poisson_trace

        return poisson_trace(
            ["tiny-mlp"], num_requests=5, rate_rps=200.0, seed=1,
            seq_len_buckets=(16,),
        )

    def test_replay_records_request_spans_and_queue_depth(self):
        session = Session(hardware="small-test-chip", trace=True)
        result = session.replay(self._trace())
        assert result.metrics.served == 5
        spans = session.tracer.spans()
        requests = [s for s in spans if s.name == "replay.request"]
        assert len(requests) == 5
        snapshot = session.metrics.to_dict()
        assert snapshot["counters"]["replay.requests"] == 5
        assert snapshot["histograms"]["replay.queue_depth"]["count"] == 5

    def test_replay_metrics_identical_with_and_without_tracing(self):
        traced = Session(hardware="small-test-chip", trace=True)
        plain = Session(hardware="small-test-chip")
        trace = self._trace()
        assert (
            traced.replay(trace).metrics.to_dict()
            == plain.replay(trace).metrics.to_dict()
        )

    def test_dse_points_are_fidelity_tagged(self):
        from repro.dse import DesignSpace

        session = Session(hardware="small-test-chip", trace=True)
        space = DesignSpace(
            models=["tiny-cnn"],
            base_hardware="small-test-chip",
            option_axes={"max_segment_operators": [4, 8]},
        )
        result = session.explore(space, fidelity="greedy")
        assert len(result.records) == 2
        points = [s for s in session.tracer.spans() if s.name == "dse.point"]
        assert len(points) == 2
        assert all(s.attrs["fidelity"] == "greedy" for s in points)
        counters = session.metrics.to_dict()["counters"]
        assert counters["dse.points.greedy"] == 2


class TestSessionExports:
    def test_trace_path_session_exports_on_demand(self, tmp_path):
        target = tmp_path / "session.json"
        session = Session(hardware="small-test-chip", trace=target)
        session.compile("tiny-mlp")
        path = session.export_trace()
        assert path == target
        assert validate_chrome_trace(path)

    def test_export_without_tracing_raises(self, tmp_path):
        session = Session(hardware="small-test-chip")
        with pytest.raises(ValueError, match="tracing is off"):
            session.export_trace(tmp_path / "x.json")

    def test_export_without_path_raises(self):
        session = Session(hardware="small-test-chip", trace=True)
        with pytest.raises(ValueError, match="no trace path"):
            session.export_trace()

    def test_profile_report_from_session(self):
        session = Session(hardware="small-test-chip", trace=True)
        session.compile("tiny-mlp")
        report = session.profile_report()
        assert "== profile: top spans ==" in report
        assert "pipeline" in report


class TestCliObservability:
    def test_cli_quiet_by_default(self, tmp_path, capsys):
        code = main(
            ["dse", "--strategy", "grid", "--fidelity", "analytical",
             "--run-dir", str(tmp_path / "run")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        # Machine-checkable stdout lines survive the logging migration.
        assert "total allocator solves:" in captured.out

    def test_cli_verbose_routes_status_to_stderr(self, tmp_path, capsys):
        code = main(
            ["-v", "dse", "--strategy", "grid", "--fidelity", "analytical",
             "--run-dir", str(tmp_path / "run")]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "dse:" in captured.err
        assert "dse:" not in captured.out

    def test_cli_trace_out_and_profile(self, tmp_path, capsys):
        trace_path = tmp_path / "batch.json"
        code = main(
            ["compile-batch", "tiny-mlp", "--hardware", "small-test-chip",
             "--trace-out", str(trace_path), "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"chrome trace: {trace_path}" in out
        assert "== profile: top spans ==" in out
        totals = validate_chrome_trace(trace_path)
        assert "compile_batch" in totals and "segment" in totals
