"""OCC-style baseline compiler (Siemieniuk et al., TCAD 2021).

OCC is an MLIR-based end-to-end compiler that optimises **operator mapping
via tiling and loop unrolling**.  Each operator is mapped and executed on
its own: the tiling uses the whole chip for the running operator (so
per-operator latency is competitive), but there is no cross-operator
pipelining and no duplication-aware segment packing, and every array is a
compute array.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.segmentation import FlattenedUnit
from .base import BaselineCompiler


class OCCCompiler(BaselineCompiler):
    """One-operator-at-a-time, tiling-only, all-compute baseline."""

    name = "occ"
    pipelined = False
    duplication = True

    def segment_boundaries(self, units: Sequence[FlattenedUnit]) -> List[List[int]]:
        """Every operator forms its own segment (serial execution)."""
        return [[unit.index] for unit in units]
