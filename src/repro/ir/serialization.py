"""JSON serialisation of computation graphs.

The paper ingests networks in ONNX format.  We provide an equivalent
self-contained JSON representation ("ONNX-like") so graphs can be saved,
inspected and reloaded without a protobuf dependency.  The format is the
dictionary produced by :meth:`repro.ir.graph.Graph.to_dict`, wrapped with a
format version so future changes stay backwards compatible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .graph import Graph

FORMAT_NAME = "repro-graph"
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a serialised graph cannot be parsed."""


def graph_to_json(graph: Graph, indent: int = 2) -> str:
    """Serialise a graph to a JSON string."""
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "graph": graph.to_dict(),
    }
    return json.dumps(payload, indent=indent)


def graph_from_json(text: str) -> Graph:
    """Parse a graph from a JSON string produced by :func:`graph_to_json`.

    The payload is validated field by field so a bad document is rejected
    with a :class:`SerializationError` naming the offending field:
    ``format`` must be exactly :data:`FORMAT_NAME`, ``version`` must be a
    positive integer no newer than :data:`FORMAT_VERSION` (older versions
    remain readable), and ``graph`` must be the serialised graph mapping.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError("not a repro graph document (expected a JSON object)")
    fmt = payload.get("format")
    if fmt != FORMAT_NAME:
        raise SerializationError(
            f"unsupported 'format': {fmt!r} (expected {FORMAT_NAME!r})"
        )
    version = payload.get("version")
    if isinstance(version, bool) or not isinstance(version, int) or version < 1:
        raise SerializationError(
            f"invalid 'version': {version!r} (expected a positive integer)"
        )
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"unsupported 'version': {version} is newer than this library's "
            f"format version {FORMAT_VERSION}"
        )
    graph_data = payload.get("graph")
    if not isinstance(graph_data, dict):
        raise SerializationError("missing or malformed 'graph' section")
    return Graph.from_dict(graph_data)


def save_graph(graph: Graph, path: Union[str, Path]) -> Path:
    """Write a graph to a JSON file and return the path."""
    path = Path(path)
    path.write_text(graph_to_json(graph))
    return path


def load_graph(path: Union[str, Path]) -> Graph:
    """Load a graph from a JSON file."""
    return graph_from_json(Path(path).read_text())
