"""Frozen pre-pipeline compile paths — the parity oracles.

This module preserves, verbatim, the *fused* compile loops that
:class:`~repro.core.compiler.CMSwitchCompiler` and
:class:`~repro.baselines.base.BaselineCompiler` ran before the compile
path was decomposed into the named passes of :mod:`repro.pipeline`.
The parity test suite compiles every model through both the pass-based
pipeline and these references and asserts the programs are bit-identical
(:meth:`~repro.core.program.CompiledProgram.fingerprint`), which is what
lets the pipeline refactor claim "same compiler, new shape".

Nothing outside the tests should import this module.  It intentionally
calls the same primitives the passes call (segmenter, allocators, cost
model, code generator) — the point of the oracle is to prove that
*re-ordering and splitting* the orchestration changed nothing, not to
duplicate the numerics.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph
from .cache import AllocationCache
from .codegen import generate_program
from .program import CompiledProgram, SegmentPlan
from .segmentation import NetworkSegmenter, NoFeasiblePlanError


def reference_compile(
    graph: Graph,
    hardware: DualModeHardwareAbstraction,
    options=None,
    cache: Optional[AllocationCache] = None,
) -> CompiledProgram:
    """The pre-refactor ``CMSwitchCompiler.compile`` body, frozen.

    Dual-mode segmentation, optional fixed-mode fallback pass,
    ``choose_plan`` arbitration, feasibility check, code generation —
    all in one fused function, exactly as the compiler ran it before
    :mod:`repro.pipeline` existed.
    """
    from .compiler import CompilerOptions, choose_plan, plan_cost

    options = options or CompilerOptions()
    start = time.perf_counter()
    segmenter = NetworkSegmenter(
        hardware, options.to_segmentation_options(), cache=cache
    )
    result = segmenter.segment(graph)
    fallback_used = False
    allocation_calls = result.allocation_calls
    cache_hits = result.cache_hits
    disk_hits = result.disk_hits
    if options.allow_memory_mode and options.fixed_mode_fallback:
        fixed_options = options.to_segmentation_options()
        fixed_options.allow_memory_mode = False
        try:
            fixed_result = NetworkSegmenter(
                hardware, fixed_options, cache=cache
            ).segment(graph)
        except NoFeasiblePlanError as exc:
            allocation_calls += exc.stats.get("allocator_solves", 0)
            cache_hits += exc.stats.get("allocation_cache_hits", 0)
            disk_hits += exc.stats.get("allocation_disk_hits", 0)
        else:
            allocation_calls += fixed_result.allocation_calls
            cache_hits += fixed_result.cache_hits
            disk_hits += fixed_result.disk_hits
            result, fallback_used = choose_plan(result, fixed_result)
    final_cost = plan_cost(result)
    if result.segments and not math.isfinite(final_cost):
        attempts = allocation_calls + cache_hits
        raise NoFeasiblePlanError(
            f"no feasible execution plan for graph {graph.name!r} on "
            f"{hardware.name!r}: every evaluated plan has infinite cost",
            stats={
                "allocator_solves": allocation_calls,
                "allocation_cache_hits": cache_hits,
                "allocation_disk_hits": disk_hits,
                "allocation_cache_hit_rate": (
                    cache_hits / attempts if attempts else 0.0
                ),
                "wall_seconds": time.perf_counter() - start,
            },
        )
    meta_program = None
    if options.generate_code and result.segments:
        meta_program = generate_program(graph.name, result.segments, hardware)
    elapsed = time.perf_counter() - start
    block_repeat = float(graph.metadata.get("block_repeat", 1.0))
    solve_attempts = allocation_calls + cache_hits
    stats = {
        "allocator_solves": allocation_calls,
        "allocation_cache_hits": cache_hits,
        "allocation_disk_hits": disk_hits,
        "allocation_cache_hit_rate": (
            cache_hits / solve_attempts if solve_attempts else 0.0
        ),
        "wall_seconds": elapsed,
    }
    return CompiledProgram(
        graph_name=graph.name,
        compiler_name="cmswitch",
        hardware=hardware,
        segments=result.segments,
        block_repeat=block_repeat,
        compile_seconds=elapsed,
        metadata={
            "graph_metadata": dict(graph.metadata),
            "options": {
                "max_segment_operators": options.max_segment_operators,
                "pipelined": options.pipelined,
                "include_switch_cost": options.include_switch_cost,
                "use_milp": options.use_milp,
                "refine": options.refine,
                "allow_memory_mode": options.allow_memory_mode,
            },
            "num_flattened_units": len(result.units),
            "allocation_calls": allocation_calls,
            "dp_seconds": result.dp_seconds,
            "fixed_mode_fallback_used": fallback_used,
        },
        stats=stats,
        meta_program=meta_program,
    )


# ---------------------------------------------------------------------- #
# frozen scalar allocator kernels — parity oracles for the vectorised
# rewrites in repro.core.allocation
# ---------------------------------------------------------------------- #
def reference_candidate_allocations(
    profile,
    hardware: DualModeHardwareAbstraction,
    max_arrays: int,
    allow_memory_mode: bool = True,
    max_candidates: int = 24,
):
    """The pre-vectorisation ``candidate_allocations`` body, frozen.

    A Python double loop over the candidate grid with one scalar Eq. 10
    call per cell.  The vectorised rewrite must reproduce this output
    exactly (including sort stability and the 1e-9 Pareto tolerance) on
    every feasible grid; the two differ deliberately only for the
    all-infeasible grid, where this body returned a useless
    infinite-latency candidate (the dead-fallback bug) and the rewrite
    returns an empty list.
    """
    import numpy as np

    from ..cost.latency import INFEASIBLE_LATENCY, operator_latency_cycles
    from .allocation import AllocationCandidate, OperatorAllocation, _geometric_range

    min_compute = max(1, profile.min_compute_arrays(hardware))
    if min_compute > max_arrays:
        return []
    mem_cap = profile.memory_arrays_for_working_set(hardware) if allow_memory_mode else 0
    mem_cap = min(mem_cap, max_arrays - min_compute)

    compute_options = _geometric_range(min_compute, max_arrays)
    memory_options = [0] + _geometric_range(1, mem_cap) if mem_cap > 0 else [0]

    raw = []
    for compute in compute_options:
        for memory in memory_options:
            if compute + memory > max_arrays:
                continue
            latency = operator_latency_cycles(
                profile, OperatorAllocation(compute, memory), hardware
            )
            raw.append(AllocationCandidate(compute, memory, latency))

    raw.sort(key=lambda c: (c.total_arrays, c.latency_cycles))
    pareto = []
    best_latency = INFEASIBLE_LATENCY
    for candidate in raw:
        if candidate.latency_cycles < best_latency - 1e-9:
            pareto.append(candidate)
            best_latency = candidate.latency_cycles
    if not pareto and raw:
        pareto = [raw[0]]
    if len(pareto) > max_candidates:
        indices = np.linspace(0, len(pareto) - 1, max_candidates).round().astype(int)
        pareto = [pareto[i] for i in sorted(set(indices.tolist()))]
    return pareto


def reference_greedy_allocate(
    profiles, hardware: DualModeHardwareAbstraction, pipelined: bool = True,
    allow_memory_mode: bool = True,
):
    """The pre-vectorisation ``GreedyAllocator.allocate`` body, frozen.

    Re-scores every operator on every iteration (O(n) per hand-out).
    The incremental rewrite must produce identical allocations and
    latency.
    """
    from ..cost.latency import OperatorAllocation, operator_latency_cycles, segment_latency_cycles
    from .allocation import AllocationResult, infeasible_result

    if not profiles:
        return AllocationResult({}, 0.0, True, "greedy")
    allocations = {}
    for name, profile in profiles.items():
        allocations[name] = OperatorAllocation(
            compute_arrays=max(1, profile.min_compute_arrays(hardware)), memory_arrays=0
        )
    used = sum(a.total_arrays for a in allocations.values())
    if used > hardware.num_arrays:
        return infeasible_result()

    def latency_of(name, allocation):
        return operator_latency_cycles(profiles[name], allocation, hardware)

    remaining = hardware.num_arrays - used
    while remaining > 0:
        bottleneck = max(allocations, key=lambda n: latency_of(n, allocations[n]))
        current = allocations[bottleneck]
        current_latency = latency_of(bottleneck, current)
        grow_compute = OperatorAllocation(current.compute_arrays + 1, current.memory_arrays)
        options = [(latency_of(bottleneck, grow_compute), grow_compute)]
        if allow_memory_mode:
            grow_memory = OperatorAllocation(current.compute_arrays, current.memory_arrays + 1)
            options.append((latency_of(bottleneck, grow_memory), grow_memory))
        best_latency, best_allocation = min(options, key=lambda item: item[0])
        if best_latency >= current_latency - 1e-9:
            break
        allocations[bottleneck] = best_allocation
        remaining -= 1

    latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
    return AllocationResult(allocations, latency, True, "greedy")


def reference_refine_with_spare_arrays(
    result,
    profiles,
    hardware: DualModeHardwareAbstraction,
    pipelined: bool = True,
    allow_memory_mode: bool = True,
    reserve_arrays: int = 0,
):
    """The pre-vectorisation ``refine_with_spare_arrays`` body, frozen."""
    from ..cost.latency import OperatorAllocation, operator_latency_cycles, segment_latency_cycles
    from .allocation import AllocationResult

    if not result.feasible or not result.allocations:
        return result
    allocations = dict(result.allocations)
    used = sum(a.total_arrays for a in allocations.values())
    remaining = hardware.num_arrays - used - max(0, reserve_arrays)
    if remaining <= 0:
        return result

    def latency_of(name):
        return operator_latency_cycles(profiles[name], allocations[name], hardware)

    improved = False
    while remaining > 0:
        bottleneck = max(allocations, key=latency_of)
        current = allocations[bottleneck]
        current_latency = latency_of(bottleneck)
        grow_compute = OperatorAllocation(current.compute_arrays + 1, current.memory_arrays)
        options = [
            (operator_latency_cycles(profiles[bottleneck], grow_compute, hardware), grow_compute),
        ]
        if allow_memory_mode:
            grow_memory = OperatorAllocation(current.compute_arrays, current.memory_arrays + 1)
            options.append(
                (operator_latency_cycles(profiles[bottleneck], grow_memory, hardware), grow_memory)
            )
        best_latency, best_allocation = min(options, key=lambda item: item[0])
        if best_latency >= current_latency - 1e-9:
            break
        allocations[bottleneck] = best_allocation
        remaining -= 1
        improved = True
    if not improved:
        return result
    latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
    return AllocationResult(allocations, latency, True, result.solver)


def reference_baseline_compile(baseline, graph: Graph) -> CompiledProgram:
    """The pre-refactor ``BaselineCompiler.compile`` body, frozen.

    ``baseline`` is a live PUMA/OCC/CIM-MLC-style instance — its
    ``segment_boundaries`` and ``allocate`` strategy hooks are invoked
    exactly as the fused loop invoked them.
    """
    from ..cost.latency import segment_latency_cycles
    from ..cost.switching import (
        SegmentResources,
        aggregate_resources,
        inter_segment_breakdown,
    )
    from .segmentation import flatten_graph, live_elements_at_boundary

    hardware = baseline.hardware
    start = time.perf_counter()
    units = flatten_graph(graph, hardware)
    groups = baseline.segment_boundaries(units) if units else []
    segments: List[SegmentPlan] = []
    previous_resources: Optional[SegmentResources] = None
    for seg_index, indices in enumerate(groups):
        members = [units[i] for i in indices]
        profiles = {unit.name: unit.profile for unit in members}
        allocations = baseline.allocate(profiles)
        intra = segment_latency_cycles(
            profiles, allocations, hardware, pipelined=baseline.pipelined
        )
        boundary = indices[-1]
        live = (
            live_elements_at_boundary(units, boundary)
            if boundary + 1 < len(units)
            else 0
        )
        resources = aggregate_resources(
            profiles,
            allocations,
            live_output_elements=live,
            num_arrays_total=hardware.num_arrays,
        )
        breakdown = inter_segment_breakdown(
            previous_resources,
            resources,
            profiles,
            allocations,
            hardware,
            allow_boundary_buffering=False,
        )
        segments.append(
            SegmentPlan(
                index=seg_index,
                operator_names=[unit.name for unit in members],
                allocations=allocations,
                profiles=profiles,
                intra_cycles=intra,
                inter_cycles=sum(breakdown.values()),
                inter_breakdown=breakdown,
                resources=resources,
            )
        )
        previous_resources = resources
    meta_program = None
    if baseline.generate_code and segments:
        meta_program = generate_program(graph.name, segments, hardware)
    elapsed = time.perf_counter() - start
    return CompiledProgram(
        graph_name=graph.name,
        compiler_name=baseline.name,
        hardware=hardware,
        segments=segments,
        block_repeat=float(graph.metadata.get("block_repeat", 1.0)),
        compile_seconds=elapsed,
        metadata={"graph_metadata": dict(graph.metadata)},
        meta_program=meta_program,
    )
