"""Convolutional model zoo (ResNet, VGG, MobileNetV2)."""

from .mobilenet import build_mobilenet_v2
from .resnet import build_resnet18, build_resnet50
from .vgg import build_vgg11, build_vgg16

__all__ = [
    "build_mobilenet_v2",
    "build_resnet18",
    "build_resnet50",
    "build_vgg11",
    "build_vgg16",
]
