"""Compilation-overhead study — Fig. 18 of the paper.

CMSwitch explores a strictly larger optimisation space than CIM-MLC (the
dual-mode dimension plus the fixed-mode fallback pass), so its compilation
takes a small multiple of CIM-MLC's time — the paper reports 2.8x–6.3x,
with CNNs costing more than transformers because transformer blocks are
compiled once and reused across layers.  This experiment measures both
compilers' wall-clock compilation time on the Fig. 14 benchmark set.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines import CIMMLCCompiler
from ..core.cache import AllocationCache
from ..core.compiler import CMSwitchCompiler, CompilerOptions
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from ..models.registry import build_model
from .common import FIG14_MODELS, encode_workload, format_table


def measure_compile_time(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = FIG14_MODELS,
    batch_size: int = 1,
    seq_len: int = 64,
    repeats: int = 1,
    cache: Optional[AllocationCache] = None,
) -> List[Dict]:
    """Measure CMSwitch and CIM-MLC compilation time per benchmark.

    Args:
        repeats: Number of compilations averaged per measurement (the
            paper uses 20; benchmarks here default to 1 for speed).
        cache: Optional shared :class:`AllocationCache` given to every
            CMSwitch compile.  With a cache, the fixed-mode fallback pass
            and any repeated compiles reuse MILP solutions, which is
            exactly the compile-time lever the Fig. 18 discussion asks
            for; each row then reports the observed hit rate.

    Returns one row per model with both times, their ratio and the
    CMSwitch allocation-cache hit rate (0 when no cache is used).
    """
    hardware = hardware or dynaplasia()
    rows: List[Dict] = []
    for model in models:
        workload = encode_workload(model, batch_size, seq_len)
        graph = build_model(model, workload)
        cms_time, cms_program = _time_compiler(
            lambda: CMSwitchCompiler(
                hardware, CompilerOptions(generate_code=False), cache=cache
            ),
            graph,
            repeats,
        )
        mlc_time, _ = _time_compiler(lambda: CIMMLCCompiler(hardware), graph, repeats)
        # The pass pipeline attributes the compile time: the dual-mode DP
        # (`segment`) and the fixed-mode fallback pass are the two
        # solver-bound stages Fig. 18's overhead discussion is about.
        pass_seconds = (
            cms_program.stats.get("pass_seconds", {}) if cms_program is not None else {}
        )
        rows.append(
            {
                "model": model,
                "cmswitch_seconds": cms_time,
                "cim-mlc_seconds": mlc_time,
                "overhead_ratio": cms_time / mlc_time if mlc_time > 0 else float("inf"),
                "segment_seconds": pass_seconds.get("segment", 0.0),
                "fallback_seconds": pass_seconds.get("fixed_fallback", 0.0),
                "cmswitch_cache_hit_rate": (
                    cms_program.stats.get("allocation_cache_hit_rate", 0.0)
                    if cms_program is not None
                    else 0.0
                ),
            }
        )
    return rows


def _time_compiler(factory, graph, repeats: int) -> Tuple[float, Optional[object]]:
    """Average wall-clock compile time over ``repeats`` fresh compilers.

    Returns the average seconds and the last compiled program (for its
    statistics).
    """
    total = 0.0
    program = None
    for _ in range(max(1, repeats)):
        compiler = factory()
        start = time.perf_counter()
        program = compiler.compile(graph)
        total += time.perf_counter() - start
    return total / max(1, repeats), program


def render_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the Fig. 18 compilation-time comparison."""
    columns = [
        "model",
        "cmswitch_seconds",
        "cim-mlc_seconds",
        "overhead_ratio",
        "segment_seconds",
        "fallback_seconds",
        "cmswitch_cache_hit_rate",
    ]
    return format_table(rows, columns)


def cached_compile_speedup(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = ("mobilenet", "bert"),
    batch_size: int = 1,
    seq_len: int = 32,
    cache_dir: Optional[str] = None,
    solve_jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Cold-vs-warm demonstration of the shared allocation cache.

    Every model is compiled twice against one shared cache.  The cold
    pass populates it (the fixed-mode fallback already reuses dual-mode
    solves); the warm pass should hit almost everywhere.  Used by the CI
    smoke invocation of ``benchmarks/bench_fig18_compile_time.py`` so a
    compile-time regression (or a cache regression) is visible in logs.

    Args:
        cache_dir: Optional persistent-store directory.  With a
            previously warmed directory even the "cold" pass is served
            from disk — the number reported as ``allocator_solves_cold``
            then measures the *cross-process* warm start.
        solve_jobs: Optional worker count for parallel window solves.
            One shared :class:`~repro.core.solverpool.SolverPool` serves
            both passes (strict mode, so the solve counts are identical
            to the sequential run's); the result records the setting so
            ``BENCH_compile_cold_parallel.json`` is self-describing.

    Returns:
        ``{"cold_seconds", "warm_seconds", "speedup", "warm_hit_rate",
        "allocator_solves_cold", "allocator_solves_warm", "solve_jobs"}``.
    """
    from ..core.store import DiskCacheStore

    hardware = hardware or dynaplasia()
    store = DiskCacheStore(cache_dir) if cache_dir else None
    cache = AllocationCache(store=store)
    options = CompilerOptions(generate_code=False)
    graphs = [
        build_model(model, encode_workload(model, batch_size, seq_len)) for model in models
    ]
    pool = None
    if solve_jobs is not None:
        from ..core.solverpool import SolverPool

        pool = SolverPool(solve_jobs)

    def one_pass() -> Tuple[float, int, int, float]:
        seconds = 0.0
        solves = 0
        hits = 0
        for graph in graphs:
            start = time.perf_counter()
            program = CMSwitchCompiler(
                hardware, options, cache=cache, solver_pool=pool
            ).compile(graph)
            seconds += time.perf_counter() - start
            solves += program.stats["allocator_solves"]
            hits += program.stats["allocation_cache_hits"]
        rate = hits / (hits + solves) if (hits + solves) else 0.0
        return seconds, solves, hits, rate

    try:
        cold_seconds, cold_solves, _, _ = one_pass()
        warm_seconds, warm_solves, _, warm_rate = one_pass()
    finally:
        if pool is not None:
            pool.close()
    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "warm_hit_rate": warm_rate,
        "allocator_solves_cold": cold_solves,
        "allocator_solves_warm": warm_solves,
        "solve_jobs": 0 if solve_jobs is None else int(solve_jobs),
    }


def main() -> None:  # pragma: no cover - convenience CLI
    """Print the Fig. 18 reproduction."""
    print(render_report(measure_compile_time()))


if __name__ == "__main__":  # pragma: no cover
    main()
