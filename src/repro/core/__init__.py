"""CMSwitch compiler core: segmentation, allocation, code generation."""

from .allocation import (
    AllocationCandidate,
    AllocationResult,
    GreedyAllocator,
    MIPAllocator,
    allocate_segment,
    candidate_allocations,
    minimum_compute_arrays,
    refine_with_spare_arrays,
    segment_fits,
)
from .cache import AllocationCache, AllocationCacheKey, CacheEntry, CacheStats
from .codegen import CodeGenerationError, generate_program
from .compiler import (
    CMSwitchCompiler,
    CompilerOptions,
    NoFeasiblePlanError,
    choose_plan,
    compile_model,
)
from .metaop import (
    ComputeOp,
    MemoryReadOp,
    MemoryWriteOp,
    MetaOperator,
    MetaProgram,
    ParallelBlock,
    SwitchOp,
    SwitchType,
    WeightLoadOp,
)
from .program import CompiledProgram, SegmentPlan
from .store import DiskCacheStore, DiskStoreStats
from .segmentation import (
    FlattenedUnit,
    NetworkSegmenter,
    SegmentationOptions,
    SegmentationResult,
    flatten_graph,
    live_elements_at_boundary,
)

__all__ = [
    "AllocationCache",
    "AllocationCacheKey",
    "AllocationCandidate",
    "AllocationResult",
    "CMSwitchCompiler",
    "CacheEntry",
    "CacheStats",
    "CodeGenerationError",
    "CompiledProgram",
    "CompilerOptions",
    "ComputeOp",
    "DiskCacheStore",
    "DiskStoreStats",
    "FlattenedUnit",
    "GreedyAllocator",
    "MIPAllocator",
    "NoFeasiblePlanError",
    "MemoryReadOp",
    "MemoryWriteOp",
    "MetaOperator",
    "MetaProgram",
    "NetworkSegmenter",
    "ParallelBlock",
    "SegmentPlan",
    "SegmentationOptions",
    "SegmentationResult",
    "SwitchOp",
    "SwitchType",
    "WeightLoadOp",
    "allocate_segment",
    "candidate_allocations",
    "choose_plan",
    "compile_model",
    "flatten_graph",
    "generate_program",
    "live_elements_at_boundary",
    "minimum_compute_arrays",
    "refine_with_spare_arrays",
    "segment_fits",
]
