"""Cache-aware design-space exploration over the dual-mode compiler.

The paper's dual-mode abstraction exists so a compiler can trade CIM
arrays against memory capacity per workload — which makes hardware and
allocation design-space exploration the natural heavy-traffic use of
this repo.  This package is that layer, built on the PR 1/2 caching
infrastructure instead of ad-hoc sweep loops:

* :mod:`~repro.dse.space` — declarative :class:`DesignSpace` grids over
  models, workloads, DEHA parameters and compiler options;
* :mod:`~repro.dse.planner` — structural dedup + disk-store warmth
  probes, so batches collapse duplicates and schedule warm points first;
* :mod:`~repro.dse.strategies` — ``grid`` / ``random`` / ``greedy`` /
  ``successive-halving`` (multi-fidelity) search under an ask/tell
  protocol;
* :mod:`~repro.dse.runner` — the loop: strategy -> state skip ->
  planner -> the tiered :mod:`repro.eval` evaluators (analytical lower
  bounds, cached warm compiles, or the full
  :class:`~repro.service.CompileService` pipeline) -> records;
* :mod:`~repro.dse.state` — crash-safe resumable run directories;
* :mod:`~repro.dse.pareto` — latency/energy/arrays Pareto frontiers
  with text and CSV reports.

Quickstart::

    from repro.dse import DesignSpace, run_dse

    space = DesignSpace(
        models=["resnet18"],
        base_hardware="dynaplasia",
        hardware_axes={"num_arrays": [64, 96, 128]},
    )
    result = run_dse(space, strategy="grid", cache_dir="/tmp/allocs")
    print(result.render_report())

The CLI front end is ``repro dse`` (see ``repro dse --help``).
"""

from .pareto import (
    DEFAULT_AXES,
    dominates,
    full_fidelity_records,
    pareto_frontier,
    render_report,
    write_csv,
)
from .planner import Plan, PlannedJob, Planner
from .runner import (
    DSEResult,
    DSERunner,
    EvaluationRecord,
    FIDELITY_MODES,
    OBJECTIVES,
    run_dse,
)
from .space import DesignPoint, DesignSpace, ParameterAxis, options_signature
from .state import RunState, RunStateError, STATE_FORMAT_VERSION
from .strategies import (
    STRATEGIES,
    GreedyStrategy,
    GridStrategy,
    RandomStrategy,
    Strategy,
    SuccessiveHalvingStrategy,
    make_strategy,
)

__all__ = [
    "DEFAULT_AXES",
    "DSEResult",
    "DSERunner",
    "DesignPoint",
    "DesignSpace",
    "EvaluationRecord",
    "FIDELITY_MODES",
    "GreedyStrategy",
    "GridStrategy",
    "OBJECTIVES",
    "ParameterAxis",
    "Plan",
    "PlannedJob",
    "Planner",
    "RandomStrategy",
    "RunState",
    "RunStateError",
    "STATE_FORMAT_VERSION",
    "STRATEGIES",
    "Strategy",
    "SuccessiveHalvingStrategy",
    "dominates",
    "full_fidelity_records",
    "make_strategy",
    "options_signature",
    "pareto_frontier",
    "render_report",
    "run_dse",
    "write_csv",
]
