"""Batch compilation service with a shared allocation cache.

One CMSwitch compile is dominated by per-segment allocation solves
(Fig. 18 of the paper).  Serving many compile requests from one process —
design-space-exploration sweeps, multi-model fleets, repeated compiles of
the same network at different workloads — repeats most of those solves.
:class:`CompileService` amortises them:

* every job compiles against one shared, thread-safe
  :class:`~repro.core.cache.AllocationCache`, so structurally identical
  segments are solved once across the whole batch;
* jobs run concurrently on a thread pool (``concurrent.futures``); the
  MILP solves release the GIL inside HiGHS, so batches scale with cores;
* for CPU-bound fleets where the GIL still caps the thread backend (the
  DP and cost model are pure Python), ``backend="process"`` shuttles
  picklable job specs through a ``ProcessPoolExecutor``; workers share
  solves through a :class:`~repro.core.store.DiskCacheStore` when a
  ``cache_dir`` is given, and the results are bit-identical to the
  thread backend's (the solvers are deterministic);
* a ``cache_dir`` makes the cache persistent: any later process — a new
  CLI invocation, a CI run, a DSE sweep — warms from the directory and
  skips every solve an earlier process already did;
* each job reports its own statistics (cache hit rate, allocator solves,
  wall time) via :class:`CompileJobResult` and
  ``CompiledProgram.stats``; an error in one job is captured in its
  result and never kills the rest of the batch.

Usage::

    from repro.service import CompileJob, CompileService

    service = CompileService(cache_dir="~/.cache/repro-allocs")
    results = service.compile_batch(
        [
            CompileJob("resnet18"),
            CompileJob("bert", workload=Workload(batch_size=4)),
        ]
    )
    for result in results:
        print(result.describe())

The CLI exposes the same path as ``repro compile-batch`` (with
``--cache-dir`` and ``--backend``).
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .core.cache import AllocationCache, CacheStats
from .core.compiler import CMSwitchCompiler, CompilerOptions
from .core.program import CompiledProgram
from .core.store import DiskCacheStore
from .obs import NULL_OBS, Observability, Span, Tracer
from .hardware.deha import DualModeHardwareAbstraction
from .hardware.presets import get_preset
from .ir.graph import Graph
from .ir.serialization import graph_from_json, graph_to_json
from .models.registry import build_model
from .models.workload import Workload

__all__ = ["CompileJob", "CompileJobResult", "CompileService", "compile_batch"]

#: Valid values of ``CompileService(backend=...)``.
BACKENDS = ("thread", "process")


@dataclass
class CompileJob:
    """One compilation request.

    Attributes:
        model: Registered model name (built via
            :func:`repro.models.build_model`) or an already-built
            :class:`~repro.ir.graph.Graph`.
        workload: Workload for model building (defaults to ``Workload()``;
            ignored when ``model`` is a graph).
        hardware: Hardware preset name or abstraction instance.
        options: Compiler options (paper defaults, code generation off,
            when omitted).
        label: Display name; defaults to the model/graph name.
    """

    model: Union[str, Graph]
    workload: Optional[Workload] = None
    hardware: Union[str, DualModeHardwareAbstraction] = "dynaplasia"
    options: Optional[CompilerOptions] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        """Human-readable job name."""
        if self.label:
            return self.label
        return self.model if isinstance(self.model, str) else self.model.name

    def resolve_graph(self) -> Graph:
        """Materialise the computation graph of the job."""
        if isinstance(self.model, Graph):
            return self.model
        return build_model(self.model, self.workload or Workload())

    def resolve_hardware(self) -> DualModeHardwareAbstraction:
        """Materialise the hardware abstraction of the job."""
        if isinstance(self.hardware, DualModeHardwareAbstraction):
            return self.hardware
        return get_preset(self.hardware)

    def to_spec(self) -> Dict:
        """Picklable rendering of the job for the process backend.

        Model graphs are shipped as their JSON serialisation (the
        round-trip is exact — see :mod:`repro.ir.serialization`); every
        other field is a plain dataclass or string that pickles as-is.
        """
        return {
            "model": self.model if isinstance(self.model, str) else None,
            "graph_json": (
                graph_to_json(self.model) if isinstance(self.model, Graph) else None
            ),
            "workload": self.workload,
            "hardware": self.hardware,
            "options": self.options,
            "label": self.label,
        }

    @classmethod
    def from_spec(cls, spec: Dict) -> "CompileJob":
        """Rebuild a job from :meth:`to_spec` output (worker side)."""
        model = spec["model"]
        if spec.get("graph_json") is not None:
            model = graph_from_json(spec["graph_json"])
        return cls(
            model,
            workload=spec["workload"],
            hardware=spec["hardware"],
            options=spec["options"],
            label=spec["label"],
        )


@dataclass
class CompileJobResult:
    """Outcome of one job: the program, or the error that stopped it.

    Attributes:
        job: The originating request.
        program: The compiled program (None when the job failed).
        error: One-line error description (None on success).
        error_traceback: Full traceback text of the failure.
        wall_seconds: Wall-clock time the job took inside the service.
        stats: The program's compile statistics (allocator solves, cache
            hits, hit rate).  On failure this is usually empty, except
            for :class:`~repro.core.compiler.NoFeasiblePlanError`, whose
            pre-failure solver statistics are preserved.
        spans: Telemetry spans recorded *in another process* for this
            job (process backend with tracing on).  Thread-backend jobs
            record straight into the service's tracer and leave this
            empty.  Spans pickle bit-identically, so the batch tracer
            can re-root them under its batch span via ``adopt``.
    """

    job: CompileJob
    program: Optional[CompiledProgram] = None
    error: Optional[str] = None
    error_traceback: Optional[str] = None
    wall_seconds: float = 0.0
    stats: Dict = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the job compiled successfully."""
        return self.program is not None

    def describe(self) -> str:
        """One-line summary for logs and the CLI table."""
        if not self.ok:
            return f"{self.job.name}: FAILED ({self.error})"
        hit_rate = self.stats.get("allocation_cache_hit_rate", 0.0)
        return (
            f"{self.job.name}: {self.program.end_to_end_ms:.3f} ms, "
            f"{self.program.num_segments} segments, "
            f"cache hit rate {100.0 * hit_rate:.0f}%, "
            f"{self.wall_seconds:.3f} s"
        )


class CompileService:
    """Compiles many (model, workload, hardware) jobs concurrently.

    Concurrency / sharing contract:

    * ``backend="thread"`` (default) — jobs share one in-process
      :class:`AllocationCache`; with a ``cache_dir`` that cache also
      persists to (and warms from) disk.  The service object itself is
      safe to use from multiple threads.
    * ``backend="process"`` — jobs are pickled to a
      ``ProcessPoolExecutor``.  Workers cannot see this process's
      in-memory cache; they share solves **only** through the
      ``cache_dir`` disk store (each worker keeps its own in-memory tier
      in front of it).  Results are bit-identical to the thread
      backend's because every solver in the pipeline is deterministic.

    Args:
        cache: Shared allocation cache; a fresh bounded one is created
            when omitted (disk-backed if ``cache_dir`` is given).
            Mutually exclusive with ``cache_dir``.
        max_workers: Default pool width for :meth:`compile_batch`
            (None lets ``concurrent.futures`` choose).
        use_cache: Disable the shared cache entirely (for A/B timing).
        backend: ``"thread"`` or ``"process"`` (see contract above).
        cache_dir: Directory of a persistent
            :class:`~repro.core.store.DiskCacheStore` shared across
            threads, worker processes and future invocations.
        remote_cache: Networked third cache tier — the URL of a
            ``repro cache-server`` (a
            :class:`~repro.serve.remote.RemoteCacheStore` is built from
            it) or an already-constructed store object.  Lookups cascade
            memory → disk → remote; remote hits are promoted into the
            local tiers and fresh solves written through, so a fleet of
            services sharing one cache server solves each segment once
            *across machines*.  A dead server degrades to cold compiles,
            never errors.
        solve_memo: Optional per-run
            :class:`~repro.core.memo.SolveMemo` shared by every compile
            the service performs (thread backend; process workers cannot
            see it and share through the disk store instead).  A DSE run
            passes its own memo here so neighbouring design points reuse
            allocation solves even when the service has no cache.
        obs: Optional :class:`~repro.obs.Observability` bundle.  The
            service opens a span per batch and per job (thread-backend
            job spans nest under the batch span across pool threads;
            process-backend workers trace locally and ship their spans
            home for re-rooting) and threads the metrics registry into
            the cache it creates.
        solve_jobs: Worker threads for window-allocation solves.  The
            service builds **one** shared
            :class:`~repro.core.solverpool.SolverPool` and hands it to
            every compile it runs (thread backend), so total solver
            concurrency stays bounded by this budget no matter how many
            batch jobs run at once — the oversubscription rule.  The
            process backend deliberately does *not* propagate it:
            parallelism is across worker processes **or** within the DP,
            never multiplied.  Mutually exclusive with ``solver_pool``.
        solver_pool: An externally owned pool to use instead of building
            one; the service then never closes it.
    """

    def __init__(
        self,
        cache: Optional[AllocationCache] = None,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
        backend: str = "thread",
        cache_dir: Optional[Union[str, Path]] = None,
        remote_cache: Optional[Union[str, object]] = None,
        solve_memo=None,
        obs: Optional[Observability] = None,
        solve_jobs: Optional[int] = None,
        solver_pool=None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if cache is not None and cache_dir is not None:
            raise ValueError(
                "pass either an AllocationCache or a cache_dir, not both "
                "(attach a DiskCacheStore to the cache yourself to combine them)"
            )
        self.backend = backend
        self.obs = NULL_OBS if obs is None else obs
        self.cache_dir = str(Path(cache_dir).expanduser()) if cache_dir is not None else None
        if isinstance(remote_cache, str):
            # Deferred import: repro.serve sits above this module.
            from .serve.remote import RemoteCacheStore

            remote_cache = RemoteCacheStore(remote_cache, metrics=self.obs.metrics)
        self.remote_cache = remote_cache
        if use_cache:
            if cache is None:
                store = (
                    DiskCacheStore(self.cache_dir, metrics=self.obs.metrics)
                    if self.cache_dir
                    else None
                )
                # `cache is not None`, not truthiness: an empty
                # AllocationCache has len() == 0.
                cache = AllocationCache(
                    store=store, remote=self.remote_cache, metrics=self.obs.metrics
                )
            elif self.remote_cache is not None and cache.remote is None:
                # An explicitly passed cache gains the remote tier unless
                # it already carries one (an attached remote wins).
                cache.remote = self.remote_cache
            self.cache = cache
        else:
            self.cache = None
        self.solve_memo = solve_memo
        self.max_workers = max_workers
        if solver_pool is not None and solve_jobs is not None:
            raise ValueError("pass either solve_jobs or solver_pool, not both")
        self._owns_pool = False
        if solver_pool is None and solve_jobs is not None:
            from .core.solverpool import SolverPool

            solver_pool = SolverPool(solve_jobs, obs=self.obs)
            self._owns_pool = True
        self.solver_pool = solver_pool

    # ------------------------------------------------------------------ #
    # single job
    # ------------------------------------------------------------------ #
    def compile(self, job: CompileJob, _parent=None) -> CompileJobResult:
        """Compile one job, capturing any failure in the result.

        ``_parent`` is an internal telemetry hook: batch runs pass their
        batch span so pool-thread job spans nest under it.
        """
        start = time.perf_counter()
        with self.obs.tracer.span("compile", parent=_parent, job=job.name) as span:
            try:
                graph = job.resolve_graph()
                hardware = job.resolve_hardware()
                options = job.options or CompilerOptions(generate_code=False)
                compiler = CMSwitchCompiler(
                    hardware,
                    options,
                    cache=self.cache,
                    solve_memo=self.solve_memo,
                    obs=self.obs,
                    solver_pool=self.solver_pool,
                )
                program = compiler.compile(graph)
            except Exception as exc:  # noqa: BLE001 - isolation is the contract
                span.set(ok=False)
                return CompileJobResult(
                    job=job,
                    error=f"{type(exc).__name__}: {exc}",
                    error_traceback=traceback.format_exc(),
                    wall_seconds=time.perf_counter() - start,
                    # NoFeasiblePlanError carries the solver work done before
                    # the failure; batch accounting must not drop it.
                    stats=dict(getattr(exc, "stats", None) or {}),
                )
            span.set(ok=True)
            return CompileJobResult(
                job=job,
                program=program,
                wall_seconds=time.perf_counter() - start,
                stats=dict(program.stats),
            )

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def compile_batch(
        self,
        jobs: Sequence[CompileJob],
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List[CompileJobResult]:
        """Compile all jobs concurrently; results keep the input order.

        A failing job yields a :class:`CompileJobResult` with ``ok ==
        False``; the remaining jobs are unaffected — this holds on both
        backends (a worker-process crash fails only its own jobs).

        Args:
            max_workers: Pool width override for this batch.
            backend: ``"thread"`` / ``"process"`` override for this batch
                (defaults to the service's backend).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        backend = backend if backend is not None else self.backend
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        workers = max_workers if max_workers is not None else self.max_workers
        with self.obs.tracer.span(
            "compile_batch", jobs=len(jobs), backend=backend
        ) as batch:
            if backend == "process":
                return self._compile_batch_processes(jobs, workers, batch)
            if (workers is not None and workers <= 1) or len(jobs) == 1:
                return [self.compile(job) for job in jobs]
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(lambda job: self.compile(job, _parent=batch), jobs)
                )

    def _compile_batch_processes(
        self, jobs: Sequence[CompileJob], workers: Optional[int], batch_span=None
    ) -> List[CompileJobResult]:
        """Fan the batch out to a process pool (disk store shared, if any).

        Each job travels as a picklable spec (:meth:`CompileJob.to_spec`)
        and comes back as a pickled :class:`CompileJobResult`; the
        original job object is restored on the result so callers keep
        identity (e.g. a ``Graph`` passed by reference).  Pool-level
        failures — unpicklable payloads, a killed worker — are folded
        into the affected jobs' results instead of raising.
        """
        # Workers share solves through the disk directory: the service's
        # own cache_dir, or the store attached to an explicitly passed
        # cache (the memory tier itself cannot cross the process border).
        cache_dir = self.cache_dir
        if cache_dir is None and self.cache is not None and self.cache.store is not None:
            cache_dir = str(self.cache.store.root)
        specs = [
            {
                **job.to_spec(),
                "cache_dir": cache_dir,
                # Workers reach the networked tier by URL (the client
                # object itself holds sockets and must not cross the
                # process border); a remote passed as a bare object with
                # no URL stays parent-only.
                "remote_cache": getattr(self.remote_cache, "url", None),
                "use_cache": self.cache is not None,
                "trace": bool(self.obs.tracer.enabled),
            }
            for job in jobs
        ]
        if workers is not None:
            workers = max(1, min(workers, len(specs)))
        results: List[CompileJobResult] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_compile_spec_in_worker, spec) for spec in specs]
            for job, future in zip(jobs, futures):
                try:
                    result = future.result()
                    result.job = job
                except Exception as exc:  # noqa: BLE001 - isolation is the contract
                    result = CompileJobResult(
                        job=job,
                        error=f"{type(exc).__name__}: {exc}",
                        error_traceback=traceback.format_exc(),
                    )
                if result.spans:
                    # Worker-recorded spans: re-id into this tracer and
                    # re-root under the batch span.
                    self.obs.tracer.adopt(result.spans, parent=batch_span)
                results.append(result)
        return results

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release held resources. Idempotent.

        Shuts down the solver pool the service built (an externally
        passed ``solver_pool`` is its owner's to close) and the remote
        cache tier's sockets; batch thread pools are per-call and need
        no teardown.
        """
        if self._owns_pool and self.solver_pool is not None:
            self.solver_pool.close()
        remote = self.remote_cache
        if remote is not None and hasattr(remote, "close"):
            remote.close()

    def solver_pool_stats(self) -> Optional[Dict[str, object]]:
        """Counters of the shared solver pool (None when there is none)."""
        if self.solver_pool is None:
            return None
        return self.solver_pool.stats_dict()

    # ------------------------------------------------------------------ #
    # service-level statistics
    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> CacheStats:
        """Aggregate cache counters across every job served so far.

        Thread-backend jobs all hit ``self.cache``, so this is the whole
        story there.  Process-backend jobs run against per-worker caches
        in other processes; their activity shows up in each job's
        ``result.stats`` (and in the shared disk store), not here.
        """
        if self.cache is None:
            return CacheStats()
        return self.cache.stats.snapshot()


# ---------------------------------------------------------------------- #
# process-backend worker (module level so it pickles)
# ---------------------------------------------------------------------- #

#: Per-worker-process caches, keyed by (cache directory, remote URL), so
#: every job a worker serves shares one in-memory tier (fronting the
#: shared disk store / cache server when configured).
_WORKER_CACHES: Dict[Tuple[str, str], AllocationCache] = {}


def _worker_cache(
    cache_dir: Optional[str], remote_url: Optional[str] = None
) -> AllocationCache:
    """The (per-process) shared cache for ``(cache_dir, remote_url)``."""
    key = (cache_dir or "", remote_url or "")
    cache = _WORKER_CACHES.get(key)
    if cache is None:
        store = DiskCacheStore(cache_dir) if cache_dir else None
        remote = None
        if remote_url:
            from .serve.remote import RemoteCacheStore

            remote = RemoteCacheStore(remote_url)
        cache = AllocationCache(store=store, remote=remote)
        _WORKER_CACHES[key] = cache
    return cache


def _compile_spec_in_worker(spec: Dict) -> CompileJobResult:
    """Compile one job spec inside a pool worker.

    Job-level failures are captured in the returned result (mirroring
    :meth:`CompileService.compile`); only infrastructure failures — a
    spec that cannot be rebuilt, say — surface as exceptions, which the
    parent folds into the job's result.
    """
    job = CompileJob.from_spec(spec)
    cache = (
        _worker_cache(spec.get("cache_dir"), spec.get("remote_cache"))
        if spec.get("use_cache", True)
        else None
    )
    obs = Observability(tracer=Tracer()) if spec.get("trace") else None
    service = CompileService(cache=cache, use_cache=cache is not None, obs=obs)
    result = service.compile(job)
    if obs is not None:
        result.spans = obs.tracer.flush()
    return result


def compile_batch(
    jobs: Sequence[CompileJob],
    cache: Optional[AllocationCache] = None,
    max_workers: Optional[int] = None,
    backend: str = "thread",
    cache_dir: Optional[Union[str, Path]] = None,
) -> List[CompileJobResult]:
    """Deprecated: run one batch through a throwaway session.

    .. deprecated:: 0.4
        Use :meth:`repro.api.Session.compile_batch` — a session carries
        the cache, backend and hardware context for every entry point
        and keeps reusing them across calls.  This shim delegates to a
        fresh session and produces bit-identical results.

    Args:
        jobs: The compile requests.
        cache: Shared allocation cache (thread backend only; mutually
            exclusive with ``cache_dir``).
        max_workers: Pool width (None lets ``concurrent.futures`` choose).
        backend: ``"thread"`` or ``"process"`` — see
            :class:`CompileService` for the sharing contract.
        cache_dir: Persistent cache directory shared across threads,
            worker processes and future invocations.
    """
    import warnings

    warnings.warn(
        "repro.compile_batch() is deprecated; use repro.api.Session"
        "(...).compile_batch(jobs) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import Session

    session = Session(
        cache=cache,
        max_workers=max_workers,
        backend=backend,
        cache_dir=cache_dir,
    )
    return session.compile_batch(jobs)
