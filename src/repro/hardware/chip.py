"""Run-time state of a dual-mode CIM chip.

The compiler reasons about the chip through the static
:class:`~repro.hardware.deha.DualModeHardwareAbstraction`; the simulators
and the meta-operator interpreter additionally need *state*: which mode
every array is currently in, what it holds, and how many switches have
been performed.  :class:`CIMChip` models exactly that and enforces the
paper's constraint that an array can serve only one role at a time
(Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .deha import ArrayMode, DualModeHardwareAbstraction


class ChipStateError(RuntimeError):
    """Raised when an operation violates the chip's physical constraints."""


@dataclass
class CIMArray:
    """State of one dual-mode array.

    Attributes:
        index: Array index (flattened ``(x, y)`` coordinate).
        mode: Current operating mode.
        owner: Name of the operator / buffer currently occupying the array,
            or ``None`` when free.
        content: Free-form tag describing the stored data ("weights:fc1",
            "activations:layer0_qk_out", ...).
    """

    index: int
    mode: ArrayMode = ArrayMode.IDLE
    owner: Optional[str] = None
    content: Optional[str] = None

    @property
    def is_free(self) -> bool:
        """Whether the array currently has no owner."""
        return self.owner is None


class CIMChip:
    """Mutable run-time model of the dual-mode CIM accelerator.

    Args:
        hardware: The static hardware abstraction.
    """

    def __init__(self, hardware: DualModeHardwareAbstraction) -> None:
        self.hardware = hardware
        self.arrays: List[CIMArray] = [CIMArray(index=i) for i in range(hardware.num_arrays)]
        self.switch_count_m2c = 0
        self.switch_count_c2m = 0
        self.switch_cycles = 0.0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count(self, mode: ArrayMode) -> int:
        """Number of arrays currently in ``mode``."""
        return sum(1 for array in self.arrays if array.mode is mode)

    @property
    def num_compute(self) -> int:
        """Number of arrays in compute mode."""
        return self.count(ArrayMode.COMPUTE)

    @property
    def num_memory(self) -> int:
        """Number of arrays in memory mode."""
        return self.count(ArrayMode.MEMORY)

    @property
    def num_idle(self) -> int:
        """Number of idle arrays."""
        return self.count(ArrayMode.IDLE)

    def free_arrays(self) -> List[CIMArray]:
        """Arrays without an owner."""
        return [array for array in self.arrays if array.is_free]

    def arrays_of(self, owner: str) -> List[CIMArray]:
        """Arrays currently owned by ``owner``."""
        return [array for array in self.arrays if array.owner == owner]

    def memory_capacity_elements(self) -> int:
        """Elements storable in the arrays currently in memory mode."""
        return self.num_memory * self.hardware.array_capacity_elements

    # ------------------------------------------------------------------ #
    # state transitions
    # ------------------------------------------------------------------ #
    def _array(self, index: int) -> CIMArray:
        if not 0 <= index < len(self.arrays):
            raise ChipStateError(
                f"array index {index} out of range (chip has {len(self.arrays)} arrays)"
            )
        return self.arrays[index]

    def switch_mode(self, indices: Iterable[int], mode: ArrayMode) -> float:
        """Switch the given arrays to ``mode`` and return the cycle cost.

        Arrays already in the requested mode cost nothing (the paper only
        charges for actual transitions, Eq. 1).  Switching an array drops
        its ownership — data must have been saved beforehand (step 1 of the
        inter-segment procedure) or be dead.
        """
        cycles = 0.0
        for index in indices:
            array = self._array(index)
            if array.mode is mode:
                continue
            if mode is ArrayMode.COMPUTE:
                if array.mode is ArrayMode.MEMORY:
                    self.switch_count_m2c += 1
                    cycles += self.hardware.switch_latency_m2c
            elif mode is ArrayMode.MEMORY:
                if array.mode is ArrayMode.COMPUTE:
                    self.switch_count_c2m += 1
                    cycles += self.hardware.switch_latency_c2m
            array.mode = mode
            array.owner = None
            array.content = None
        self.switch_cycles += cycles
        return cycles

    def assign(
        self,
        indices: Iterable[int],
        owner: str,
        mode: ArrayMode,
        content: Optional[str] = None,
    ) -> float:
        """Assign arrays to an owner in the requested mode.

        Returns the mode-switch cycles incurred.  Raises if any array is
        already owned by a different owner — the same array cannot serve
        two operators simultaneously (constraint Eq. 5/7).
        """
        indices = list(indices)
        for index in indices:
            array = self._array(index)
            if array.owner is not None and array.owner != owner:
                raise ChipStateError(
                    f"array {index} already owned by {array.owner!r}; cannot assign to {owner!r}"
                )
        cycles = self.switch_mode(indices, mode)
        for index in indices:
            array = self._array(index)
            array.owner = owner
            array.content = content
        return cycles

    def release(self, owner: str) -> List[int]:
        """Release every array owned by ``owner`` (mode is kept)."""
        released = []
        for array in self.arrays:
            if array.owner == owner:
                array.owner = None
                array.content = None
                released.append(array.index)
        return released

    def allocate_free(self, count: int, owner: str, mode: ArrayMode) -> Tuple[List[int], float]:
        """Grab ``count`` free arrays for ``owner`` (prefer mode matches).

        Free arrays already in the requested mode are taken first to
        minimise switching, mirroring the compiler's assumption that arrays
        keep their mode across segments whenever possible.

        Returns:
            The chosen indices and the switch cycles incurred.

        Raises:
            ChipStateError: If fewer than ``count`` arrays are free.
        """
        free = self.free_arrays()
        if len(free) < count:
            raise ChipStateError(
                f"requested {count} arrays for {owner!r} but only {len(free)} are free"
            )
        free.sort(key=lambda array: (array.mode is not mode, array.index))
        chosen = [array.index for array in free[:count]]
        cycles = self.assign(chosen, owner, mode)
        return chosen, cycles

    def reset(self) -> None:
        """Return every array to the idle, unowned state and clear counters."""
        for array in self.arrays:
            array.mode = ArrayMode.IDLE
            array.owner = None
            array.content = None
        self.switch_count_m2c = 0
        self.switch_count_c2m = 0
        self.switch_cycles = 0.0

    def occupancy(self) -> Dict[str, int]:
        """Histogram of owners to array counts (for reports/tests)."""
        histogram: Dict[str, int] = {}
        for array in self.arrays:
            if array.owner is not None:
                histogram[array.owner] = histogram.get(array.owner, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CIMChip {self.hardware.name}: {self.num_compute} compute / "
            f"{self.num_memory} memory / {self.num_idle} idle>"
        )
