"""Tests for the meta-operator IR (DMO) and code generation."""

import pytest

from repro.core import (
    CMSwitchCompiler,
    CompilerOptions,
    ComputeOp,
    MemoryReadOp,
    MemoryWriteOp,
    MetaProgram,
    ParallelBlock,
    SwitchOp,
    SwitchType,
    WeightLoadOp,
    generate_program,
)
from repro.core.codegen import CodeGenerationError
from repro.core.metaop import _format_addresses
from repro.core.program import SegmentPlan
from repro.cost import OperatorAllocation, profile_operator
from repro.hardware import ArrayMode, CIMChip
from repro.ir import Linear, TensorSpec


class TestMetaOperatorRendering:
    def test_address_ranges_collapse(self):
        assert _format_addresses([0, 1, 2, 5, 7, 8]) == "[0-2,5,7-8]"

    def test_empty_addresses(self):
        assert _format_addresses([]) == "[]"

    def test_switch_render_follows_grammar(self):
        op = SwitchOp(SwitchType.TO_MEMORY, (3, 4, 5))
        assert op.render() == "CM.switch(TOM, [3-5])"
        op = SwitchOp(SwitchType.TO_COMPUTE, (0,))
        assert op.render() == "CM.switch(TOC, [0])"

    def test_compute_render_mentions_dims(self):
        op = ComputeOp("fc1", (0, 1), macs=1024, m=4, k=16, n=16)
        text = op.render()
        assert "fc1" in text and "4x16x16" in text

    def test_weight_load_render(self):
        op = WeightLoadOp("fc1", (0, 1, 2), elements=4096)
        assert "fc1" in op.render() and "4096" in op.render()

    def test_memory_ops_render_source_and_destination(self):
        read = MemoryReadOp("fc1", 100, source="cim-memory", array_addresses=(4,))
        write = MemoryWriteOp("fc1", 100, destination="main-memory")
        assert "src=cim-memory" in read.render()
        assert "dst=main-memory" in write.render()

    def test_parallel_block_render(self):
        block = ParallelBlock(0, [SwitchOp(SwitchType.TO_COMPUTE, (0,))])
        text = block.render()
        assert text.startswith("parallel {")
        assert text.rstrip().endswith("}")


class TestMetaProgramQueries:
    def make_program(self):
        program = MetaProgram("g")
        block = ParallelBlock(0)
        block.append(SwitchOp(SwitchType.TO_COMPUTE, (0, 1)))
        block.append(WeightLoadOp("fc", (0, 1), 100))
        block.append(ComputeOp("fc", (0, 1), 100, 1, 10, 10))
        program.append(block)
        program.append(SwitchOp(SwitchType.TO_MEMORY, (2,)))
        return program

    def test_blocks_and_switches(self):
        program = self.make_program()
        assert len(program.blocks()) == 1
        assert len(program.switches()) == 2
        assert program.switched_array_count() == 3

    def test_operator_iteration_and_counts(self):
        program = self.make_program()
        assert len(program) == 4
        assert program.count(ComputeOp) == 1
        assert program.count(SwitchOp) == 2

    def test_render_contains_all_operators(self):
        text = self.make_program().render()
        assert "CM.switch" in text and "CIM.mvm" in text and "parallel {" in text


def _simple_segment(hardware):
    op = Linear(
        "fc",
        input=TensorSpec("x", (8, 64)),
        output=TensorSpec("y", (8, 64)),
        weight=TensorSpec("w", (64, 64)),
    )
    profile = profile_operator(op)
    return SegmentPlan(
        index=0,
        operator_names=["fc"],
        allocations={"fc": OperatorAllocation(1, 1)},
        profiles={"fc": profile},
        intra_cycles=10.0,
        inter_cycles=0.0,
    )


class TestCodeGeneration:
    def test_single_segment_program_structure(self, small_chip):
        program = generate_program("g", [_simple_segment(small_chip)], small_chip)
        assert len(program.blocks()) == 1
        block = program.blocks()[0]
        kinds = [type(op) for op in block.body]
        assert WeightLoadOp in kinds and ComputeOp in kinds and MemoryReadOp in kinds

    def test_switches_only_for_mode_changes(self, small_chip):
        chip = CIMChip(small_chip)
        # Pre-set every array to compute mode: only the memory arrays should switch.
        chip.switch_mode(range(small_chip.num_arrays), ArrayMode.COMPUTE)
        program = generate_program("g", [_simple_segment(small_chip)], small_chip, chip=chip)
        switches = program.switches()
        assert all(op.switch_type is SwitchType.TO_MEMORY for op in switches)

    def test_no_array_serves_two_operators(self, small_chip, compiled_tiny_transformer):
        meta = compiled_tiny_transformer.meta_program
        for block in meta.blocks():
            owners = {}
            for op in block.body:
                if isinstance(op, (ComputeOp, WeightLoadOp)):
                    for address in op.array_addresses:
                        owners.setdefault(address, op.operator)
                        assert owners[address] == op.operator
            compute_addresses = set()
            memory_addresses = set()
            for op in block.body:
                if isinstance(op, ComputeOp):
                    compute_addresses.update(op.array_addresses)
                if isinstance(op, (MemoryReadOp, MemoryWriteOp)):
                    memory_addresses.update(op.array_addresses)
            assert not compute_addresses & memory_addresses

    def test_weight_loads_only_for_static_operands(self, small_chip, compiled_tiny_transformer):
        meta = compiled_tiny_transformer.meta_program
        loaded = {op.operator for op in meta.operators() if isinstance(op, WeightLoadOp)}
        assert not any("_qk" in name or "_sv" in name for name in loaded)

    def test_addresses_within_chip(self, small_chip, compiled_tiny_cnn):
        meta = compiled_tiny_cnn.meta_program
        for op in meta.operators():
            addresses = getattr(op, "array_addresses", ())
            assert all(0 <= a < small_chip.num_arrays for a in addresses)

    def test_oversized_plan_raises(self, small_chip):
        segment = _simple_segment(small_chip)
        segment.allocations["fc"] = OperatorAllocation(small_chip.num_arrays, 1)
        with pytest.raises(CodeGenerationError):
            generate_program("g", [segment], small_chip)

    def test_compiler_emits_meta_program_when_requested(self, small_chip, tiny_mlp_graph):
        with_code = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=True)).compile(
            tiny_mlp_graph
        )
        without = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False)).compile(
            tiny_mlp_graph
        )
        assert with_code.meta_program is not None
        assert without.meta_program is None

    def test_segment_count_matches_blocks(self, compiled_tiny_transformer):
        meta = compiled_tiny_transformer.meta_program
        assert len(meta.blocks()) == compiled_tiny_transformer.num_segments
