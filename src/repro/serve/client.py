"""HTTP client for the compile daemon.

:class:`Client` is the programmatic counterpart of ``repro serve`` — it
speaks the versioned JSON wire format of :mod:`repro.serve.wire` over a
kept-alive ``http.client`` connection and reconstructs real
:class:`~repro.core.program.CompiledProgram` objects on the way back
(``result.program.fingerprint()`` is bit-identical to what a local
``Session.compile`` of the same job produces).

Retry policy — deliberately asymmetric:

* **Connection-level failures** (refused, reset, dead keep-alive socket)
  are retried with jittered exponential backoff: the daemon may still be
  binding its port, or a load balancer may be failing over.  These
  retries are safe because an unsent/unanswered request did no work.
* **Compile failures** (a structured ``ok: false`` answer) are *never*
  retried: the daemon already ran the pipeline deterministically, and
  the same inputs would fail the same way.  They surface as
  :class:`CompileRequestError` carrying the server's structured payload.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union
from urllib.parse import urlsplit

from ..core.program import CompiledProgram
from ..service import CompileJob
from .wire import WIRE_VERSION, check_version, job_to_wire, program_from_wire

__all__ = ["Client", "ClientError", "CompileRequestError", "RemoteCompileResult"]


class ClientError(RuntimeError):
    """The daemon could not be reached (after retries) or spoke garbage."""


class CompileRequestError(ClientError):
    """The daemon answered with a structured error (never retried).

    Attributes:
        code: Machine-readable error code (``compile_failed``,
            ``bad_request``, ``queue_full``, ``timeout``...).
        status: HTTP status of the response.
        payload: The full structured error document.
    """

    def __init__(self, code: str, message: str, status: int, payload: Dict) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.status = status
        self.payload = payload


@dataclass
class RemoteCompileResult:
    """One remotely compiled job.

    Attributes:
        program: The reconstructed compiled program
            (fingerprint-bit-identical to a local compile).
        fingerprint: The server-side fingerprint — always equal to
            ``program.fingerprint()``; kept separately so callers can
            verify the wire round trip.
        coalesced: True when the daemon satisfied this request by
            joining an already-in-flight identical compile.
        wall_seconds: Server-side wall time of the compile (a coalesced
            request reports the shared compile's time).
        stats: The program's compile statistics as sent by the server.
    """

    program: CompiledProgram
    fingerprint: str
    coalesced: bool = False
    wall_seconds: float = 0.0
    stats: Dict = field(default_factory=dict)

    def verify(self) -> bool:
        """Recompute the fingerprint locally and compare with the server's."""
        return self.program.fingerprint() == self.fingerprint


#: Errors that mean "the request may never have reached a worker" — the
#: only ones worth retrying.
_RETRYABLE = (
    ConnectionError,
    http.client.NotConnected,
    http.client.CannotSendRequest,
    http.client.RemoteDisconnected,
    http.client.ResponseNotReady,
    http.client.BadStatusLine,
    socket.timeout,
    socket.gaierror,
    OSError,
)


class Client:
    """Blocking JSON client for one compile daemon.

    Args:
        url: Daemon base URL, e.g. ``http://127.0.0.1:8741``.
        timeout: Socket timeout per request in seconds.  Compiles can
            legitimately take a while cold, so the default is generous.
        retries: Connection-failure retry budget (compile errors are
            never retried regardless).
        backoff: Base of the jittered exponential backoff in seconds;
            attempt *n* sleeps ``backoff * 2**n * uniform(0.5, 1.0)``.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 600.0,
        retries: int = 3,
        backoff: float = 0.2,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme != "http":
            raise ValueError(
                f"compile daemon URL must be http:// (got {url!r}); the serving "
                "tier is designed for trusted networks — front it with a TLS "
                "proxy for anything else"
            )
        if not parts.hostname:
            raise ValueError(f"compile daemon URL has no host: {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.url = f"http://{self.host}:{self.port}"
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        """Drop the kept-alive connection (reopened on the next call)."""
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_once(self, method: str, path: str, body: Optional[bytes]):
        conn = self._connection()
        headers = {"Content-Type": "application/json"} if body is not None else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()  # drain so the connection can be reused
        return response.status, data

    def _request(self, method: str, path: str, payload=None):
        """One request with jittered-backoff retry on connection errors only.

        Returns ``(status, parsed_json)``; raises :class:`ClientError`
        when the daemon stays unreachable or answers non-JSON.
        """
        body = (
            json.dumps(payload, sort_keys=True).encode("utf-8")
            if payload is not None
            else None
        )
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            try:
                status, data = self._request_once(method, path, body)
                break
            except _RETRYABLE as exc:
                self.close()  # the socket is suspect; start fresh next time
                last_error = exc
                if attempt >= self.retries:
                    raise ClientError(
                        f"could not reach compile daemon at {self.url} "
                        f"after {attempt + 1} attempt(s): {exc}"
                    ) from exc
                # Jittered exponential backoff: desynchronises a fleet of
                # clients all retrying against a daemon that is still binding.
                time.sleep(self.backoff * (2**attempt) * random.uniform(0.5, 1.0))
        try:
            document = json.loads(data.decode("utf-8")) if data else {}
        except (UnicodeDecodeError, ValueError) as exc:
            raise ClientError(
                f"compile daemon at {self.url} answered non-JSON "
                f"(status {status}): {data[:200]!r}"
            ) from exc
        return status, document

    @staticmethod
    def _raise_structured(status: int, document: Dict) -> None:
        error = document.get("error")
        if isinstance(error, dict):
            raise CompileRequestError(
                str(error.get("code", "error")),
                str(error.get("message", "request failed")),
                status,
                document,
            )
        raise ClientError(f"compile daemon answered status {status}: {document!r}")

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    def compile(self, job: Union[CompileJob, str], **job_kwargs) -> RemoteCompileResult:
        """Compile one job on the daemon.

        Accepts a :class:`CompileJob` or a model name plus
        ``CompileJob`` keyword arguments (``workload=``, ``options=``...).

        Raises:
            CompileRequestError: The daemon refused or failed the job
                (never retried).
            ClientError: The daemon was unreachable after retries.
        """
        if not isinstance(job, CompileJob):
            job = CompileJob(job, **job_kwargs)
        request = {"wire_version": WIRE_VERSION, "job": job_to_wire(job)}
        status, document = self._request("POST", "/v1/compile", request)
        if status != 200 or not document.get("ok"):
            self._raise_structured(status, document)
        return self._parse_result(document)

    def compile_batch(
        self, jobs: Sequence[Union[CompileJob, str]]
    ) -> List[Union[RemoteCompileResult, CompileRequestError]]:
        """Compile many jobs in one round trip; outcomes keep input order.

        A failing job yields its :class:`CompileRequestError` *in the
        list* (mirroring :meth:`CompileService.compile_batch` isolation)
        rather than aborting the batch.
        """
        wire_jobs = [
            job_to_wire(job if isinstance(job, CompileJob) else CompileJob(job))
            for job in jobs
        ]
        request = {"wire_version": WIRE_VERSION, "jobs": wire_jobs}
        status, document = self._request("POST", "/v1/compile_batch", request)
        if status != 200 or "results" not in document:
            self._raise_structured(status, document)
        check_version(document, "compile_batch response")
        outcomes: List[Union[RemoteCompileResult, CompileRequestError]] = []
        for entry in document["results"]:
            if entry.get("ok"):
                outcomes.append(self._parse_result(entry))
            else:
                error = entry.get("error") or {}
                outcomes.append(
                    CompileRequestError(
                        str(error.get("code", "error")),
                        str(error.get("message", "job failed")),
                        status,
                        entry,
                    )
                )
        return outcomes

    def _parse_result(self, document: Dict) -> RemoteCompileResult:
        check_version(document, "compile response")
        program = program_from_wire(document["program"])
        return RemoteCompileResult(
            program=program,
            fingerprint=str(document.get("fingerprint", "")),
            coalesced=bool(document.get("coalesced", False)),
            wall_seconds=float(document.get("wall_seconds", 0.0)),
            stats=dict(document.get("stats") or {}),
        )

    def cache_stats(self) -> Dict:
        """The daemon's ``/v1/cache/stats`` document."""
        status, document = self._request("GET", "/v1/cache/stats")
        if status != 200:
            self._raise_structured(status, document)
        return document

    def metrics_text(self) -> str:
        """The daemon's text ``/metrics`` exposition (raw)."""
        for attempt in range(self.retries + 1):
            try:
                status, data = self._request_once("GET", "/metrics", None)
                if status != 200:
                    raise ClientError(f"/metrics answered status {status}")
                return data.decode("utf-8")
            except _RETRYABLE as exc:
                self.close()
                if attempt >= self.retries:
                    raise ClientError(
                        f"could not reach compile daemon at {self.url}: {exc}"
                    ) from exc
                time.sleep(self.backoff * (2**attempt) * random.uniform(0.5, 1.0))
        raise ClientError("unreachable")  # pragma: no cover - loop always exits

    def healthy(self, wait_seconds: float = 0.0) -> bool:
        """True once ``/healthz`` answers, polling up to ``wait_seconds``.

        The poll makes "start the daemon, then point clients at it"
        scripts race-free without sleeps.
        """
        deadline = time.monotonic() + wait_seconds
        while True:
            try:
                status, _ = self._request_once("GET", "/healthz", None)
                if status == 200:
                    return True
            except _RETRYABLE:
                self.close()
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.05)
