"""Hardware presets used in the paper's evaluation.

* :func:`dynaplasia` — the main target chip (Table 2): 96 dual-mode arrays
  of 320x320 cells, 10 KB x 8 native buffer, 32 b/cycle internal bandwidth
  and a single-cycle mode switch implemented by changing the global
  wordline drivers.
* :func:`prime` — the scalability target of §5.5: a ReRAM chip in the
  style of PRIME with more and larger arrays but a much higher write cost.
* :func:`small_test_chip` — a deliberately tiny configuration that keeps
  unit tests and the functional simulator fast while still exercising
  partitioning and segmentation.
"""

from __future__ import annotations

from .deha import DualModeHardwareAbstraction


def dynaplasia(**overrides) -> DualModeHardwareAbstraction:
    """DynaPlasia-style eDRAM dual-mode chip (the paper's Table 2).

    Parameters not listed in Table 2 (external bandwidth, compute latency,
    read/write port widths, clock) are set to values consistent with the
    DynaPlasia ISSCC'23 publication and can be overridden by keyword.
    """
    params = dict(
        name="dynaplasia",
        num_arrays=96,
        array_rows=320,
        array_cols=320,
        buffer_bytes=10 * 1024 * 8,
        internal_bw_bits=32,
        extern_bw_bits=1024,
        weight_bits=8,
        activation_bits=8,
        # Bit-serial 8-bit activations: one full-array MVM every 64 cycles.
        compute_latency_cycles=64,
        # Memory mode reads one 320-bit row per cycle; eDRAM writes refresh
        # a whole 320x8-bit row per cycle when programming weights.
        array_read_bits=320,
        array_write_bits=2560,
        switch_latency_m2c=1,
        switch_latency_c2m=1,
        switch_method_m2c="drive GIA/GIAb with IA//IA (compute)",
        switch_method_c2m="drive GIA/GIAb high (memory)",
        frequency_mhz=200.0,
        write_energy_factor=1.0,
        # eDRAM dual-mode macros update weights while computing (ping-pong
        # write), hiding most of the array-programming latency.
        weight_update_overlap=0.8,
    )
    params.update(overrides)
    return DualModeHardwareAbstraction(**params)


def prime(**overrides) -> DualModeHardwareAbstraction:
    """PRIME-style ReRAM chip used for the scalability study (§5.5).

    PRIME offers larger and more numerous arrays — big enough to hold whole
    network segments — but pays a much higher per-write cost because the
    memory device is ReRAM.
    """
    params = dict(
        name="prime",
        num_arrays=256,
        array_rows=256,
        array_cols=256,
        buffer_bytes=64 * 1024,
        internal_bw_bits=64,
        extern_bw_bits=512,
        weight_bits=8,
        activation_bits=8,
        compute_latency_cycles=32,
        array_read_bits=256,
        array_write_bits=2048,
        switch_latency_m2c=2,
        switch_latency_c2m=2,
        switch_method_m2c="reconfigure crossbar drivers (compute)",
        switch_method_c2m="reconfigure crossbar drivers (memory)",
        frequency_mhz=200.0,
        write_energy_factor=8.0,
        # ReRAM writes are slow and disturb concurrent reads: little overlap.
        weight_update_overlap=0.25,
    )
    params.update(overrides)
    return DualModeHardwareAbstraction(**params)


def small_test_chip(**overrides) -> DualModeHardwareAbstraction:
    """A tiny dual-mode chip for unit tests and the functional simulator."""
    params = dict(
        name="small-test-chip",
        num_arrays=8,
        array_rows=64,
        array_cols=64,
        buffer_bytes=2 * 1024,
        internal_bw_bits=32,
        extern_bw_bits=64,
        weight_bits=8,
        activation_bits=8,
        compute_latency_cycles=16,
        array_read_bits=64,
        array_write_bits=512,
        switch_latency_m2c=1,
        switch_latency_c2m=1,
        frequency_mhz=200.0,
        write_energy_factor=1.0,
        weight_update_overlap=0.5,
    )
    params.update(overrides)
    return DualModeHardwareAbstraction(**params)


PRESETS = {
    "dynaplasia": dynaplasia,
    "prime": prime,
    "small-test-chip": small_test_chip,
}


def get_preset(name: str, **overrides) -> DualModeHardwareAbstraction:
    """Build a preset hardware abstraction by name.

    Raises:
        KeyError: If the preset name is unknown.
    """
    if name not in PRESETS:
        raise KeyError(f"unknown hardware preset {name!r}; known: {', '.join(sorted(PRESETS))}")
    return PRESETS[name](**overrides)
