"""Computation-graph intermediate representation.

This package provides the ONNX-like graph substrate the CMSwitch compiler
consumes: tensor metadata, operator definitions with MAC/data-volume
accounting, the DAG container, a fluent builder, lowering/partitioning
transforms and JSON serialisation.
"""

from .builder import GraphBuilder
from .graph import Graph, GraphError, GraphStats
from .operators import (
    Activation,
    Concat,
    Conv2d,
    Elementwise,
    Embedding,
    GlobalAvgPool,
    Linear,
    MatMul,
    MatMulLike,
    MatmulDims,
    Normalization,
    Operator,
    Pool2d,
    Reshape,
    Softmax,
    operator_from_dict,
)
from .serialization import (
    SerializationError,
    graph_from_json,
    graph_to_json,
    load_graph,
    save_graph,
)
from .tensor import DataType, TensorSpec
from .transforms import (
    SubOperator,
    arrays_for_elements,
    arrays_for_stationary,
    ceil_div,
    fuse_auxiliary_traffic,
    lower_to_matmuls,
    partition_operator,
    tile_counts,
)

__all__ = [
    "Activation",
    "Concat",
    "Conv2d",
    "DataType",
    "Elementwise",
    "Embedding",
    "GlobalAvgPool",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "GraphStats",
    "Linear",
    "MatMul",
    "MatMulLike",
    "MatmulDims",
    "Normalization",
    "Operator",
    "Pool2d",
    "Reshape",
    "SerializationError",
    "Softmax",
    "SubOperator",
    "TensorSpec",
    "arrays_for_elements",
    "arrays_for_stationary",
    "ceil_div",
    "fuse_auxiliary_traffic",
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "lower_to_matmuls",
    "operator_from_dict",
    "partition_operator",
    "save_graph",
    "tile_counts",
]
