"""Dual-mode meta-operator flow (DMO, §4.4 / Fig. 13 of the paper).

The compiler expresses its result as a flow of *meta-operators* rather
than machine code so the output stays chip-agnostic: a backend can lower
the flow to the ISA of a particular dual-mode CIM chip.  The grammar
follows Fig. 13::

    <code>      ::= <operators>* | parallel "{" <operators>* "}"
    <operators> ::= <operators>* <CIM>* <MEMORY>* <SWC>*
    <SWC>       ::= CM.switch(<type>, arrayaddr)
    <type>      ::= TOM | TOC

``CM.switch(TOM, ...)`` marks the listed arrays as valid memory units
(on-chip buffer); ``CM.switch(TOC, ...)`` returns them to compute mode.
Standard compute and memory meta-operators describe MVM/MMM execution and
data movement; ``parallel { ... }`` wraps one network segment whose
operators execute as a pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


class SwitchType(Enum):
    """Direction of a dual-mode switch meta-operator."""

    TO_MEMORY = "TOM"
    TO_COMPUTE = "TOC"


def _format_addresses(addresses: Sequence[int]) -> str:
    """Render an array-address list compactly (ranges collapsed)."""
    if not addresses:
        return "[]"
    sorted_addrs = sorted(addresses)
    ranges: List[Tuple[int, int]] = []
    start = prev = sorted_addrs[0]
    for addr in sorted_addrs[1:]:
        if addr == prev + 1:
            prev = addr
            continue
        ranges.append((start, prev))
        start = prev = addr
    ranges.append((start, prev))
    parts = [f"{a}" if a == b else f"{a}-{b}" for a, b in ranges]
    return "[" + ",".join(parts) + "]"


@dataclass(frozen=True)
class MetaOperator:
    """Base class of all meta-operators."""

    def render(self) -> str:
        """Single-line textual form (Fig. 13 syntax)."""
        raise NotImplementedError


@dataclass(frozen=True)
class SwitchOp(MetaOperator):
    """``CM.switch(<TOM|TOC>, arrayaddr)`` — change the mode of arrays."""

    switch_type: SwitchType
    array_addresses: Tuple[int, ...]

    def render(self) -> str:
        return f"CM.switch({self.switch_type.value}, {_format_addresses(self.array_addresses)})"


@dataclass(frozen=True)
class WeightLoadOp(MetaOperator):
    """Program static weights into compute-mode arrays."""

    operator: str
    array_addresses: Tuple[int, ...]
    elements: int

    def render(self) -> str:
        return (
            f"CIM.load_weight({self.operator}, "
            f"{_format_addresses(self.array_addresses)}, elems={self.elements})"
        )


@dataclass(frozen=True)
class ComputeOp(MetaOperator):
    """Execute an MVM/MMM on compute-mode arrays."""

    operator: str
    array_addresses: Tuple[int, ...]
    macs: int
    m: int
    k: int
    n: int

    def render(self) -> str:
        return (
            f"CIM.mvm({self.operator}, {_format_addresses(self.array_addresses)}, "
            f"dims={self.m}x{self.k}x{self.n})"
        )


@dataclass(frozen=True)
class MemoryReadOp(MetaOperator):
    """Read operands from memory-mode arrays / buffer / main memory."""

    operator: str
    elements: int
    source: str  # "cim-memory", "buffer" or "main-memory"
    array_addresses: Tuple[int, ...] = ()

    def render(self) -> str:
        suffix = f", {_format_addresses(self.array_addresses)}" if self.array_addresses else ""
        return f"MEM.read({self.operator}, elems={self.elements}, src={self.source}{suffix})"


@dataclass(frozen=True)
class MemoryWriteOp(MetaOperator):
    """Write results to memory-mode arrays / buffer / main memory."""

    operator: str
    elements: int
    destination: str
    array_addresses: Tuple[int, ...] = ()

    def render(self) -> str:
        suffix = f", {_format_addresses(self.array_addresses)}" if self.array_addresses else ""
        return (
            f"MEM.write({self.operator}, elems={self.elements}, "
            f"dst={self.destination}{suffix})"
        )


@dataclass
class ParallelBlock:
    """One network segment: its body executes as a pipeline."""

    segment_index: int
    body: List[MetaOperator] = field(default_factory=list)

    def append(self, op: MetaOperator) -> None:
        """Add a meta-operator to the block body."""
        self.body.append(op)

    def render(self, indent: str = "  ") -> str:
        """Multi-line textual form."""
        lines = [f"parallel {{  # segment {self.segment_index}"]
        lines.extend(indent + op.render() for op in self.body)
        lines.append("}")
        return "\n".join(lines)


@dataclass
class MetaProgram:
    """Complete meta-operator flow for one compiled graph."""

    graph_name: str
    items: List[object] = field(default_factory=list)  # SwitchOp / WeightLoadOp / ParallelBlock

    def append(self, item: object) -> None:
        """Append a top-level item (switch, weight load or segment block)."""
        self.items.append(item)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def blocks(self) -> List[ParallelBlock]:
        """The program's segments in order."""
        return [item for item in self.items if isinstance(item, ParallelBlock)]

    def switches(self) -> List[SwitchOp]:
        """Every mode-switch meta-operator, including those inside blocks."""
        found: List[SwitchOp] = []
        for item in self.items:
            if isinstance(item, SwitchOp):
                found.append(item)
            elif isinstance(item, ParallelBlock):
                found.extend(op for op in item.body if isinstance(op, SwitchOp))
        return found

    def operators(self) -> Iterator[MetaOperator]:
        """Iterate over every meta-operator in program order."""
        for item in self.items:
            if isinstance(item, ParallelBlock):
                yield from item.body
            else:
                yield item

    def count(self, cls: type) -> int:
        """Number of meta-operators of a given class."""
        return sum(1 for op in self.operators() if isinstance(op, cls))

    def switched_array_count(self) -> int:
        """Total number of (array, switch) events in the program."""
        return sum(len(op.array_addresses) for op in self.switches())

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Full textual form of the meta-operator flow."""
        lines = [f"# meta-operator flow for {self.graph_name}"]
        for item in self.items:
            if isinstance(item, ParallelBlock):
                lines.append(item.render())
            else:
                lines.append(item.render())
        return "\n".join(lines)

    def __len__(self) -> int:
        return sum(1 for _ in self.operators())
