"""Unit tests for the computation graph container (repro.ir.graph)."""

import pytest

from repro.ir import (
    Graph,
    GraphBuilder,
    GraphError,
    Linear,
    TensorSpec,
    graph_from_json,
    graph_to_json,
)
from repro.ir.serialization import SerializationError, load_graph, save_graph


def linear(name, in_name, out_name, k=8, n=8, m=4):
    return Linear(
        name,
        input=TensorSpec(in_name, (m, k)),
        output=TensorSpec(out_name, (m, n)),
        weight=TensorSpec(f"{name}_w", (k, n)),
    )


@pytest.fixture
def chain_graph():
    graph = Graph("chain")
    graph.add_input(TensorSpec("x", (4, 8)))
    graph.add_operator(linear("fc1", "x", "h1"))
    graph.add_operator(linear("fc2", "h1", "h2"))
    graph.add_operator(linear("fc3", "h2", "y"))
    graph.add_output(TensorSpec("y", (4, 8)))
    return graph


class TestConstruction:
    def test_len_and_contains(self, chain_graph):
        assert len(chain_graph) == 3
        assert "fc2" in chain_graph
        assert "missing" not in chain_graph

    def test_duplicate_operator_name_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            chain_graph.add_operator(linear("fc1", "y", "z"))

    def test_duplicate_producer_rejected(self, chain_graph):
        with pytest.raises(GraphError):
            chain_graph.add_operator(linear("fc4", "x", "h1"))

    def test_operator_lookup(self, chain_graph):
        assert chain_graph.operator("fc2").name == "fc2"
        with pytest.raises(GraphError):
            chain_graph.operator("nope")


class TestQueries:
    def test_producer_of(self, chain_graph):
        assert chain_graph.producer_of("h1").name == "fc1"
        assert chain_graph.producer_of("x") is None

    def test_consumers_of(self, chain_graph):
        consumers = chain_graph.consumers_of("h1")
        assert [op.name for op in consumers] == ["fc2"]

    def test_predecessors_successors(self, chain_graph):
        fc2 = chain_graph.operator("fc2")
        assert [op.name for op in chain_graph.predecessors(fc2)] == ["fc1"]
        assert [op.name for op in chain_graph.successors(fc2)] == ["fc3"]

    def test_topological_order_is_deterministic(self, chain_graph):
        order = [op.name for op in chain_graph.topological_order()]
        assert order == ["fc1", "fc2", "fc3"]

    def test_topological_order_respects_dependencies(self, tiny_transformer_graph):
        order = [op.name for op in tiny_transformer_graph.topological_order()]
        position = {name: i for i, name in enumerate(order)}
        for producer, consumer in tiny_transformer_graph.dependency_pairs():
            assert position[producer] < position[consumer]

    def test_cim_operators_subset(self, tiny_cnn_graph):
        cim = tiny_cnn_graph.cim_operators()
        assert all(op.is_cim_mappable for op in cim)
        assert len(cim) < len(tiny_cnn_graph)

    def test_dependency_pairs(self, chain_graph):
        assert chain_graph.dependency_pairs() == {("fc1", "fc2"), ("fc2", "fc3")}


class TestValidation:
    def test_valid_graph_passes(self, chain_graph):
        chain_graph.validate()

    def test_unknown_input_rejected(self):
        graph = Graph("bad")
        graph.add_operator(linear("fc", "missing", "y"))
        with pytest.raises(GraphError):
            graph.validate()

    def test_builder_validates_on_finish(self):
        builder = GraphBuilder("ok")
        x = builder.input("x", (4, 8))
        builder.linear(x, 8)
        builder.finish()  # should not raise


class TestStats:
    def test_stats_totals(self, chain_graph):
        stats = chain_graph.stats()
        assert stats.num_operators == 3
        assert stats.num_cim_operators == 3
        assert stats.total_macs == 3 * 4 * 8 * 8
        assert stats.total_weight_elements == 3 * 64

    def test_mean_arithmetic_intensity_positive(self, tiny_cnn_graph):
        assert tiny_cnn_graph.stats().mean_arithmetic_intensity > 0

    def test_view_ops_excluded_from_activation_totals(self, tiny_transformer_graph):
        stats = tiny_transformer_graph.stats()
        direct = sum(
            op.output_elements for op in tiny_transformer_graph.operators if not op.is_view
        )
        assert stats.total_activation_elements == direct


class TestSerialization:
    def test_json_roundtrip(self, tiny_cnn_graph):
        restored = graph_from_json(graph_to_json(tiny_cnn_graph))
        assert len(restored) == len(tiny_cnn_graph)
        assert restored.name == tiny_cnn_graph.name
        assert restored.stats().total_macs == tiny_cnn_graph.stats().total_macs
        assert [op.name for op in restored.topological_order()] == [
            op.name for op in tiny_cnn_graph.topological_order()
        ]

    def test_metadata_roundtrip(self, tiny_transformer_graph):
        restored = graph_from_json(graph_to_json(tiny_transformer_graph))
        assert restored.metadata == tiny_transformer_graph.metadata

    def test_file_roundtrip(self, tmp_path, tiny_mlp_graph):
        path = save_graph(tiny_mlp_graph, tmp_path / "g.json")
        restored = load_graph(path)
        assert len(restored) == len(tiny_mlp_graph)

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_json("{not json")

    def test_wrong_document_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_json('{"format": "other", "version": 1}')

    def test_wrong_version_rejected(self, tiny_mlp_graph):
        text = graph_to_json(tiny_mlp_graph).replace('"version": 1', '"version": 99')
        with pytest.raises(SerializationError):
            graph_from_json(text)

    def test_non_object_payload_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_json("[1, 2, 3]")

    def test_bad_format_error_names_field(self):
        with pytest.raises(SerializationError, match="'format'"):
            graph_from_json('{"format": "other", "version": 1}')
        with pytest.raises(SerializationError, match="'format'"):
            graph_from_json('{"version": 1}')

    def test_newer_version_error_names_field(self, tiny_mlp_graph):
        text = graph_to_json(tiny_mlp_graph).replace('"version": 1', '"version": 99')
        with pytest.raises(SerializationError, match="'version'.*newer"):
            graph_from_json(text)

    def test_non_integer_version_rejected(self, tiny_mlp_graph):
        for bad in ('"1"', "0", "-2", "true", "null", "1.5"):
            text = graph_to_json(tiny_mlp_graph).replace('"version": 1', f'"version": {bad}')
            with pytest.raises(SerializationError, match="'version'"):
                graph_from_json(text)

    def test_missing_graph_section_rejected(self):
        with pytest.raises(SerializationError, match="'graph'"):
            graph_from_json('{"format": "repro-graph", "version": 1}')
