"""The serving replay simulator (:mod:`repro.sim.replay`).

Four layers of assurance, mirroring the ISSUE checklist:

* **Conformance** — a single-request replay agrees with the
  :class:`TimingSimulator` replay of the same program within the
  existing modelling tolerance, across the tiny zoo x option matrix.
* **Determinism** — same seed, same metrics JSON, bit for bit.
* **Metamorphic properties** — driven through the pure scheduling core
  (:func:`replay_schedule`), no compiles needed: stretching arrival
  gaps never increases queueing delay, merging schedules preserves
  total served work, p50 <= p99 and utilisation stays in [0, 1] on
  randomized schedules.
* **Golden fixtures** — two committed traces replay to frozen metrics.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.core.compiler import CMSwitchCompiler, CompilerOptions
from repro.models.registry import build_model
from repro.models.workload import Workload
from repro.sim.metrics import compute_metrics, percentile
from repro.sim.replay import ReplaySimulator, ScheduledRequest, replay_schedule
from repro.sim.timing import TimingSimulator
from repro.sim.traces import Trace, TraceRequest, load_trace, poisson_trace
from repro.cli import main

DATA_DIR = Path(__file__).parent / "data"

#: (model, workload) pairs covering the tiny zoo's graph shapes.
ZOO = [
    ("tiny-mlp", Workload(batch_size=1, seq_len=32)),
    ("tiny-cnn", Workload(batch_size=1, seq_len=32)),
    ("tiny-transformer", Workload(batch_size=1, seq_len=16)),
]

#: Option matrix of the conformance sweep: dual-mode and fixed-mode.
OPTION_MATRIX = [
    CompilerOptions(generate_code=False),
    CompilerOptions(generate_code=False, allow_memory_mode=False),
]


def _single_request_trace(model: str, workload: Workload) -> Trace:
    return Trace(
        requests=[
            TraceRequest(
                request_id="r0", arrival_ms=0.0, model=model, workload=workload
            )
        ]
    )


# ---------------------------------------------------------------------- #
# conformance: replay pins to the timing simulator
# ---------------------------------------------------------------------- #
class TestConformance:
    @pytest.mark.parametrize("model,workload", ZOO, ids=[m for m, _ in ZOO])
    @pytest.mark.parametrize(
        "options", OPTION_MATRIX, ids=["dual-mode", "fixed-mode"]
    )
    def test_single_request_matches_timing_simulator(
        self, small_chip, model, workload, options
    ):
        """A one-request replay is the old single-program story retold.

        The replay charges the request its program's ``end_to_end_ms``
        exactly; per graph pass that must agree with the
        :class:`TimingSimulator`'s independent replay of the generated
        meta-operator flow within the established modelling tolerance
        (``rel=2.0`` — the same bound ``test_tracks_compiler_prediction``
        pins the compiler's own prediction with).
        """
        result = ReplaySimulator(small_chip, options=options).run(
            _single_request_trace(model, workload)
        )
        assert not result.compile_errors
        outcome = result.outcomes[0]
        assert outcome.served and outcome.switch_ms == 0.0

        # An independent compile with code generation on, for the
        # timing simulator (which replays the meta-operator flow).
        program = CMSwitchCompiler(
            small_chip, dataclasses.replace(options, generate_code=True)
        ).compile(build_model(model, workload))
        # Code generation must not change the predicted timing the
        # replay charged.
        assert outcome.service_ms == pytest.approx(program.end_to_end_ms)

        report = TimingSimulator(small_chip).run(program)
        service_cycles = outcome.service_ms / small_chip.cycles_to_ms(1.0)
        per_pass_cycles = service_cycles / program.block_repeat
        assert report.total_cycles == pytest.approx(per_pass_cycles, rel=2.0)

    def test_single_request_metrics_shape(self, small_chip):
        result = ReplaySimulator(small_chip).run(
            _single_request_trace("tiny-mlp", Workload(batch_size=1, seq_len=32))
        )
        metrics = result.metrics
        assert metrics.served == metrics.requests == 1
        assert metrics.latency_p50_ms == metrics.latency_p99_ms
        assert metrics.utilisation == 1.0  # one request, zero idle time
        assert metrics.switch_ms_total == 0.0


# ---------------------------------------------------------------------- #
# determinism
# ---------------------------------------------------------------------- #
class TestDeterminism:
    def test_same_seed_bit_identical_metrics_json(self):
        def run():
            trace = poisson_trace(
                ["tiny-mlp", "tiny-cnn"], num_requests=14, seed=9,
                seq_len_buckets=(16, 32),
            )
            result = ReplaySimulator("small-test-chip").run(trace)
            return json.dumps(result.metrics.to_dict(), sort_keys=True)

        assert run() == run()

    def test_session_replay_matches_direct_simulator(self, tmp_path):
        trace = poisson_trace(["tiny-mlp"], num_requests=6, seed=4)
        session = Session(hardware="small-test-chip")
        via_session = session.replay(trace)
        direct = ReplaySimulator("small-test-chip").run(trace)
        assert via_session.metrics.to_dict() == direct.metrics.to_dict()


# ---------------------------------------------------------------------- #
# metamorphic properties on the pure scheduling core
# ---------------------------------------------------------------------- #
def _schedule(arrivals_services, keys=None, switch_ms=0.05):
    """Helper: run the pure core over (arrival, service) pairs."""
    items = [
        ScheduledRequest(
            request_id=f"r{i}",
            model="m",
            arrival_ms=arrival,
            service_ms=service,
            program_key=keys[i] if keys else "p0",
        )
        for i, (arrival, service) in enumerate(arrivals_services)
    ]

    def switch(prev, key):
        return 0.0 if prev is None or prev == key else switch_ms

    return replay_schedule(items, switch)


# Bounded, non-degenerate virtual-time quantities.
_gaps = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False), min_size=1, max_size=30
)
_services = st.floats(min_value=0.001, max_value=20.0, allow_nan=False)


class TestMetamorphic:
    @settings(max_examples=60, deadline=None)
    @given(gaps=_gaps, services=st.data(), k=st.floats(min_value=1.0, max_value=10.0))
    def test_stretching_gaps_never_increases_queueing(self, gaps, services, k):
        """Lindley monotonicity: thinner traffic never queues longer.

        Scaling every arrival gap by ``k >= 1`` preserves the request
        order (hence the switch-cost sequence) while weakly increasing
        every inter-arrival distance, so each request's queueing delay
        can only shrink or stay.
        """
        arrivals, now = [], 0.0
        for gap in gaps:
            now += gap
            arrivals.append(now)
        pairs = [(a, services.draw(_services)) for a in arrivals]
        keys = [f"p{i % 3}" for i in range(len(pairs))]
        base = _schedule(pairs, keys=keys)
        stretched = _schedule([(a * k, s) for a, s in pairs], keys=keys)
        for before, after in zip(base, stretched):
            assert after.queue_ms <= before.queue_ms + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(gaps=_gaps, services=st.data())
    def test_merging_preserves_total_served_work(self, gaps, services):
        """Interleaving two schedules serves exactly the union of both."""
        arrivals, now = [], 0.0
        for gap in gaps:
            now += gap
            arrivals.append(now)
        pairs = [(a, services.draw(_services)) for a in arrivals]
        half = len(pairs) // 2
        first, second = pairs[:half], pairs[half:]
        merged = sorted(pairs, key=lambda p: p[0])
        total = sum(o.service_ms for o in _schedule(merged))
        parts = sum(o.service_ms for o in _schedule(sorted(first))) + sum(
            o.service_ms for o in _schedule(sorted(second))
        )
        assert total == pytest.approx(parts)
        assert len(_schedule(merged)) == len(first) + len(second)

    @settings(max_examples=60, deadline=None)
    @given(gaps=_gaps, services=st.data())
    def test_percentiles_ordered_and_utilisation_bounded(self, gaps, services):
        arrivals, now = [], 0.0
        for gap in gaps:
            now += gap
            arrivals.append(now)
        pairs = [(a, services.draw(_services)) for a in arrivals]
        keys = [f"p{i % 2}" for i in range(len(pairs))]
        metrics = compute_metrics(_schedule(pairs, keys=keys))
        assert metrics.latency_p50_ms <= metrics.latency_p99_ms
        assert 0.0 <= metrics.utilisation <= 1.0
        assert 0.0 <= metrics.switch_share <= 1.0
        assert metrics.served == len(pairs)

    def test_failed_requests_do_not_occupy_the_server(self):
        items = [
            ScheduledRequest("r0", "m", 0.0, 5.0, "p0"),
            ScheduledRequest("r1", "m", 1.0, None, "p1"),  # failed compile
            ScheduledRequest("r2", "m", 2.0, 5.0, "p0"),
        ]
        outcomes = replay_schedule(items, lambda prev, key: 0.0)
        assert [o.served for o in outcomes] == [True, False, True]
        # r2 starts when r0 finishes; the failed r1 added no delay and
        # did not perturb the array layout (no p1 -> p0 switch).
        assert outcomes[2].start_ms == outcomes[0].finish_ms
        failed = compute_metrics(outcomes)
        assert failed.failed == 1 and failed.served == 2

    def test_schedule_clock_only_moves_forward(self):
        # A request arriving long before the server frees up must not
        # rewind the clock (ManualClock would raise).
        items = [
            ScheduledRequest("r0", "m", 0.0, 10.0, "p0"),
            ScheduledRequest("r1", "m", 0.5, 1.0, "p0"),
        ]
        outcomes = replay_schedule(items, lambda prev, key: 0.0)
        assert outcomes[1].start_ms == outcomes[0].finish_ms
        assert outcomes[1].queue_ms == pytest.approx(9.5)


class TestPercentile:
    def test_nearest_rank_basics(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == 2.0
        assert percentile(values, 99.0) == 4.0
        assert percentile(values, 0.0) == 1.0
        assert math.isnan(percentile([], 50.0))

    def test_monotone_in_q(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        qs = [0, 10, 25, 50, 75, 90, 99, 100]
        results = [percentile(values, q) for q in qs]
        assert results == sorted(results)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


# ---------------------------------------------------------------------- #
# golden fixtures
# ---------------------------------------------------------------------- #
class TestGoldenTraces:
    @pytest.mark.parametrize("name", ["single", "mixed"])
    def test_frozen_metrics(self, name):
        trace = load_trace(DATA_DIR / f"trace_{name}.jsonl")
        result = ReplaySimulator("small-test-chip").run(trace)
        expected = json.loads(
            (DATA_DIR / f"trace_{name}.expected.json").read_text(encoding="utf-8")
        )
        assert result.metrics.to_dict() == expected

    def test_mixed_trace_actually_switches_modes(self):
        # The mixed fixture interleaves models precisely so consecutive
        # programs disagree on array layouts; a regression that stops
        # charging re-provisioning would zero this.
        trace = load_trace(DATA_DIR / "trace_mixed.jsonl")
        result = ReplaySimulator("small-test-chip").run(trace)
        assert result.metrics.switch_ms_total > 0.0


# ---------------------------------------------------------------------- #
# replay result / report shape
# ---------------------------------------------------------------------- #
class TestReplayResult:
    def test_json_report_shape(self, tmp_path):
        trace = poisson_trace(["tiny-mlp"], num_requests=4, seed=0)
        result = ReplaySimulator("small-test-chip").run(trace)
        payload = result.to_json_dict()
        assert payload["schema"] == "repro-replay-report/1"
        assert payload["hardware"]["preset"] == "small-test-chip"
        assert payload["trace"]["requests"] == 4
        assert payload["compile"]["distinct_programs"] >= 1
        assert payload["metrics"]["served"] == 4
        json.dumps(payload)  # strictly serialisable

    def test_warm_replay_solves_nothing(self, tmp_path):
        trace = poisson_trace(["tiny-mlp", "tiny-cnn"], num_requests=8, seed=2)
        cache_dir = tmp_path / "cache"
        cold = Session(hardware="small-test-chip", cache_dir=str(cache_dir)).replay(trace)
        warm = Session(hardware="small-test-chip", cache_dir=str(cache_dir)).replay(trace)
        assert cold.allocator_solves > 0
        assert warm.allocator_solves == 0
        assert warm.metrics.to_dict() == cold.metrics.to_dict()

    def test_failed_compile_is_isolated(self, small_chip):
        # An infeasible workload (huge model on the 8-array chip would
        # still plan; instead force failure with an unknown model name
        # routed around the registry check).
        trace = Trace(
            requests=[
                TraceRequest(
                    request_id="r0", arrival_ms=0.0, model="tiny-mlp",
                    workload=Workload(batch_size=1, seq_len=32),
                ),
                TraceRequest(
                    request_id="r1", arrival_ms=0.1, model="no-such-model",
                    workload=Workload(batch_size=1, seq_len=32),
                ),
            ]
        )
        result = ReplaySimulator(small_chip).run(trace)
        assert result.metrics.served == 1
        assert result.metrics.failed == 1
        assert result.compile_errors
        served = [o for o in result.outcomes if o.served]
        assert len(served) == 1


# ---------------------------------------------------------------------- #
# CLI regression: bad trace files exit 2 with a usage message
# ---------------------------------------------------------------------- #
class TestCLITraceErrors:
    def test_replay_nonexistent_trace_exits_2(self, tmp_path, capsys):
        code = main(["replay", "--trace", str(tmp_path / "missing.jsonl")])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read trace file" in err
        assert "usage: repro replay" in err

    def test_replay_malformed_trace_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not a trace\n", encoding="utf-8")
        code = main(["replay", "--trace", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert "invalid trace file" in err

    def test_replay_newer_version_exits_2(self, tmp_path, capsys):
        future = tmp_path / "future.jsonl"
        future.write_text(
            '{"format": "repro-trace", "version": 99}\n', encoding="utf-8"
        )
        code = main(["replay", "--trace", str(future)])
        err = capsys.readouterr().err
        assert code == 2
        assert "newer than the supported" in err

    def test_dse_nonexistent_trace_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "dse", "tiny-mlp", "--objective", "trace-p99",
                "--trace", str(tmp_path / "missing.jsonl"),
                "--run-dir", str(tmp_path / "run"),
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read trace file" in err
        assert "usage: repro dse" in err

    def test_dse_trace_objective_requires_trace(self, tmp_path, capsys):
        code = main(
            ["dse", "tiny-mlp", "--objective", "trace-p99",
             "--run-dir", str(tmp_path / "run")]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "requires --trace" in err

    def test_dse_trace_objective_rejects_analytical_fidelity(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        from repro.sim.traces import save_trace

        save_trace(poisson_trace(["tiny-mlp"], num_requests=2, seed=0), trace_path)
        code = main(
            ["dse", "tiny-mlp", "--objective", "trace-p99", "--trace",
             str(trace_path), "--fidelity", "analytical",
             "--run-dir", str(tmp_path / "run")]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "needs real compiled plans" in err

    def test_replay_unknown_synthetic_model_exits_2(self, capsys):
        code = main(["replay", "--models", "no-such-model"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown model name" in err


class TestCLIReplay:
    def test_replay_reports_machine_lines(self, tmp_path, capsys):
        json_out = tmp_path / "report.json"
        code = main(
            [
                "replay", "--preset", "small-test-chip", "--synthetic", "poisson",
                "--models", "tiny-mlp", "--requests", "6", "--seed", "1",
                "--seq-lens", "16", "--json-out", str(json_out),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replay throughput:" in out
        assert "replay p50:" in out
        assert "replay p99:" in out
        assert "total allocator solves:" in out
        payload = json.loads(json_out.read_text(encoding="utf-8"))
        assert payload["metrics"]["served"] == 6

    def test_replay_same_seed_identical_metrics(self, tmp_path, capsys):
        args = [
            "replay", "--preset", "small-test-chip", "--models", "tiny-mlp",
            "--requests", "5", "--seed", "3", "--seq-lens", "16",
        ]
        assert main(args + ["--json-out", str(tmp_path / "a.json")]) == 0
        assert main(args + ["--json-out", str(tmp_path / "b.json")]) == 0
        capsys.readouterr()
        a = json.loads((tmp_path / "a.json").read_text(encoding="utf-8"))
        b = json.loads((tmp_path / "b.json").read_text(encoding="utf-8"))
        assert a["metrics"] == b["metrics"]
