"""Functional and timing simulators for compiled dual-mode CIM programs."""

from .functional import (
    FunctionalReport,
    FunctionalSimulationError,
    FunctionalSimulator,
    OperatorCheck,
    execute_tiled_matmul,
)
from .reference import ReferenceExecutor, ReferenceExecutionError, deterministic_tensor
from .timing import TimingBreakdown, TimingReport, TimingSimulator

__all__ = [
    "FunctionalReport",
    "FunctionalSimulationError",
    "FunctionalSimulator",
    "OperatorCheck",
    "ReferenceExecutionError",
    "ReferenceExecutor",
    "TimingBreakdown",
    "TimingReport",
    "TimingSimulator",
    "deterministic_tensor",
    "execute_tiled_matmul",
]
