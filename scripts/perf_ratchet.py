"""Performance ratchet: fail CI when the cold compile path regresses.

The repository commits measured baselines, ``BENCH_compile_cold.json``
(sequential) and ``BENCH_compile_cold_parallel.json`` (``--solve-jobs``),
seeded from ``benchmarks/bench_fig18_compile_time.py --quick``.  Each
records the cold-pass wall time and allocator-solve count of the
standard compile-time smoke.  CI re-measures and compares::

    PYTHONPATH=src python benchmarks/bench_fig18_compile_time.py \
        --quick --json-out BENCH_now_1.json
    PYTHONPATH=src python benchmarks/bench_fig18_compile_time.py \
        --quick --json-out BENCH_now_2.json
    python scripts/perf_ratchet.py BENCH_now_1.json BENCH_now_2.json

Two independent checks, because they fail for different reasons:

* **Solve count** (exact, every file) — ``allocator_solves_cold`` is
  deterministic: the same models on the same chip enumerate the same
  allocation windows.  Any increase, in *any* measurement, means the
  compiler started solving more sub-problems (a cache-key regression, a
  lost dedup, a parallel-DP parity break) and fails the ratchet
  outright, with no tolerance.
* **Wall time** (tolerance-gated, best-of-N) — the *minimum*
  ``cold_seconds`` across the measurement files may exceed the baseline
  by at most the tolerance.  Taking the best of several runs filters
  the one-off scheduler hiccups that made a single-shot gate flaky; a
  genuine vectorisation or solver-path regression slows every run, so
  the minimum still catches it.  The tolerance lives *in the baseline
  file* (``wall_tolerance``, a fraction) so each baseline carries the
  noise budget of the machine class that produced it; ``--tolerance``
  overrides it, and 0.20 is the fallback when neither is present.

The warm pass is already asserted elsewhere (hit rate >= 95%, zero warm
solves); the ratchet only guards the cold path.  To *advance* the
ratchet after a deliberate improvement, re-seed the baseline file with
the bench command above and commit it (keep or adjust its
``wall_tolerance`` field).

The script also understands replay reports: a measurement whose
``schema`` is ``repro-replay-report/1`` (``repro replay --json-out``) is
compared against the committed ``BENCH_replay.json`` instead.  Replay
metrics are *deterministic* — same trace seed, same chip, same options
produce bit-identical scheduling — so the ``hardware``, ``trace`` and
``metrics`` blocks must match the baseline exactly, with no tolerance
(wall time and cache hits live under ``compile``, which is ignored).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_compile_cold.json"
DEFAULT_REPLAY_BASELINE = REPO_ROOT / "BENCH_replay.json"

#: Fields the compile ratchet needs from both records.
REQUIRED = ("cold_seconds", "allocator_solves_cold")

#: Fallback fractional wall-time budget when neither the baseline file
#: nor the command line provides one.
DEFAULT_TOLERANCE = 0.20

#: Schema tag of repro.sim.replay reports (kept in sync with REPORT_SCHEMA).
REPLAY_SCHEMA = "repro-replay-report/1"

#: Replay-report blocks that must match the baseline bit-for-bit.
REPLAY_EXACT_BLOCKS = ("hardware", "trace", "metrics")


def load_json(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def load_record(path: Path) -> dict:
    record = load_json(path)
    missing = [field for field in REQUIRED if field not in record]
    if missing:
        raise SystemExit(f"error: {path} is missing fields: {', '.join(missing)}")
    return record


def resolve_tolerance(baseline: dict, override) -> float:
    """The wall-time budget: CLI override > baseline file > default."""
    if override is not None:
        return float(override)
    tolerance = baseline.get("wall_tolerance", DEFAULT_TOLERANCE)
    try:
        tolerance = float(tolerance)
    except (TypeError, ValueError):
        raise SystemExit(
            f"error: baseline wall_tolerance is not a number: {tolerance!r}"
        )
    if tolerance < 0:
        raise SystemExit(f"error: baseline wall_tolerance is negative: {tolerance}")
    return tolerance


def check_replay(baseline: dict, measured: dict, baseline_name: str) -> int:
    """Exact comparison of one replay report against the committed one."""
    failures = []
    if measured.get("schema") != baseline.get("schema"):
        failures.append(
            f"schema mismatch: {measured.get('schema')!r} vs "
            f"{baseline.get('schema')!r} baseline"
        )
    for block in REPLAY_EXACT_BLOCKS:
        if measured.get(block) != baseline.get(block):
            failures.append(
                f"{block} block diverged from the baseline (replay is "
                f"deterministic; this is a real behaviour change):\n"
                f"    measured: {json.dumps(measured.get(block), sort_keys=True)}\n"
                f"    baseline: {json.dumps(baseline.get(block), sort_keys=True)}"
            )
    print(
        f"replay ratchet (baseline {baseline_name}): "
        f"{len(REPLAY_EXACT_BLOCKS)} exact blocks compared"
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        metrics = measured.get("metrics", {})
        print(
            "OK: replay metrics bit-identical to the baseline "
            f"(served {metrics.get('served')}, "
            f"p99 {metrics.get('latency_p99_ms')} ms)"
        )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "measurements",
        type=Path,
        nargs="+",
        help=(
            "fresh BENCH_*.json record(s) to check; with several, wall "
            "time is gated on the best (minimum) run while solve counts "
            "must hold in every run"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            f"committed baseline record (default: {DEFAULT_BASELINE.name}, "
            f"or {DEFAULT_REPLAY_BASELINE.name} for replay reports)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "allowed fractional wall-time regression; overrides the "
            "baseline file's wall_tolerance field (fallback: "
            f"{DEFAULT_TOLERANCE:.2f})"
        ),
    )
    args = parser.parse_args(argv)
    if args.tolerance is not None and args.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    first = load_json(args.measurements[0])
    if first.get("schema") == REPLAY_SCHEMA:
        if len(args.measurements) > 1:
            parser.error("replay reports are deterministic; pass exactly one")
        baseline_path = args.baseline or DEFAULT_REPLAY_BASELINE
        return check_replay(load_json(baseline_path), first, baseline_path.name)

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = load_record(baseline_path)
    measured = [load_record(path) for path in args.measurements]
    tolerance = resolve_tolerance(baseline, args.tolerance)

    base_solves = int(baseline["allocator_solves_cold"])
    base_seconds = float(baseline["cold_seconds"])
    budget = base_seconds * (1.0 + tolerance)
    walls = [float(record["cold_seconds"]) for record in measured]
    best_seconds = min(walls)

    runs = ", ".join(f"{seconds:.3f}" for seconds in walls)
    print(
        f"perf ratchet (baseline {baseline_path.name}, "
        f"{len(measured)} measurement(s)):\n"
        f"  solves : exact gate vs {base_solves} baseline, every run\n"
        f"  wall   : best of [{runs}] s = {best_seconds:.3f} s vs "
        f"{base_seconds:.3f} s baseline "
        f"(budget {budget:.3f} s = +{100 * tolerance:.0f}%)"
    )

    failures = []
    for path, record in zip(args.measurements, measured):
        now_solves = int(record["allocator_solves_cold"])
        if now_solves > base_solves:
            failures.append(
                f"allocator_solves_cold regressed in {path.name}: "
                f"{now_solves} > {base_solves} (solve counts are "
                "deterministic; this is a real regression)"
            )
    if best_seconds > budget:
        failures.append(
            f"cold_seconds regressed: best run {best_seconds:.3f} s > "
            f"{budget:.3f} s ({base_seconds:.3f} s +{100 * tolerance:.0f}%)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: cold compile path within the ratchet")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
