"""One injectable time source for everything that reads a clock.

The codebase needs time for two distinct purposes and historically
reached for two different stdlib calls ad hoc:

* **Epoch time** (``time.time()``) — compared against file mtimes by the
  disk store's TTL/GC maintenance and the CLI's entry-age display.
* **Monotonic time** (``time.perf_counter()``) — wall-clock intervals in
  the pipeline, service and evaluators.

Mixing the raw calls into the logic makes age-based behaviour untestable
without real sleeps.  :class:`Clock` bundles both readings behind one
small object that tests can replace: production code holds a clock and
asks it, tests hand in a :class:`ManualClock` and advance it by hand, so
a "prune everything older than an hour" test runs in microseconds.

The default :data:`SYSTEM_CLOCK` is shared and stateless — injecting a
clock is opt-in, and code that never cared keeps working unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Clock", "ManualClock", "SYSTEM_CLOCK"]


@dataclass(frozen=True)
class Clock:
    """A pair of time sources: epoch ``now`` and monotonic ``perf``.

    Attributes:
        now: Returns seconds since the epoch (comparable with file
            mtimes).  Defaults to :func:`time.time`.
        perf: Returns a monotonic reading for measuring intervals.
            Defaults to :func:`time.perf_counter`.
    """

    now: Callable[[], float] = field(default=time.time)
    perf: Callable[[], float] = field(default=time.perf_counter)


#: The process-wide default clock (real system time).
SYSTEM_CLOCK = Clock()


class ManualClock:
    """A deterministic clock for tests: time moves only when told to.

    Duck-types :class:`Clock` (``now()`` / ``perf()`` callables) with a
    single hand-advanced reading backing both, so TTL and interval logic
    can be exercised without sleeping.

    Usage::

        clock = ManualClock(start=1_000_000.0)
        store = DiskCacheStore(root, clock=clock)
        clock.advance(3600)          # one "hour" passes instantly
        store.prune(max_age_seconds=1800)
    """

    def __init__(self, start: float = 0.0) -> None:
        self._t = float(start)

    def now(self) -> float:
        """Current (manual) epoch reading."""
        return self._t

    def perf(self) -> float:
        """Current (manual) monotonic reading — same hand as :meth:`now`."""
        return self._t

    def advance(self, seconds: float) -> None:
        """Move time forward; negative steps are rejected (clocks don't)."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._t += float(seconds)
