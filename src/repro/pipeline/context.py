"""The typed state a compile pipeline threads through its passes.

A :class:`PipelineContext` is created once per compile and handed to
every :class:`~repro.pipeline.passes.Pass` in order.  Each pass reads
the fields earlier passes produced and writes its own — the context is
the *only* channel between passes, which is what makes them individually
replaceable (swap the segmentation strategy, drop code generation, add
an instrumentation pass) without touching the others.

The context also carries the instrumentation the pipeline itself
maintains: per-pass wall times (:attr:`PipelineContext.pass_seconds`,
surfaced as ``CompiledProgram.stats["pass_seconds"]``) and the ordered
:class:`TraceEvent` list hook consumers see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cache import AllocationCache
from ..obs import NULL_OBS
from ..core.segmentation import (
    FlattenedUnit,
    NetworkSegmenter,
    ProfiledOperator,
    SegmentationResult,
)
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph

__all__ = ["PipelineContext", "TraceEvent"]


@dataclass
class TraceEvent:
    """One instrumentation event emitted by the pipeline runner.

    Attributes:
        pass_name: Name of the pass the event belongs to.
        kind: ``"start"``, ``"end"`` or ``"skip"`` (pass disabled for
            this context — e.g. ``FixedModeFallback`` on a fixed-mode
            compile).
        seconds: Pass wall time; only ``"end"`` events carry a value.
    """

    pass_name: str
    kind: str
    seconds: float = 0.0


@dataclass
class PipelineContext:
    """Mutable compile state shared by the passes of one pipeline run.

    Produced/consumed fields, in pipeline order:

    ======================  ==============================  =============
    field                   produced by                     consumed by
    ======================  ==============================  =============
    ``profiled``            ``Flatten``                     ``PartitionOversized``
    ``units``               ``PartitionOversized``          ``Segment`` onwards
    ``segmenter``           ``Segment``                     ``Allocate``
    ``boundaries``          ``Segment``                     ``Allocate``
    ``result``              ``Allocate``                    every later pass
    ``fallback_used``       ``FixedModeFallback``           program metadata
    ``meta_program``        ``Codegen``                     program assembly
    ======================  ==============================  =============

    The solver counters (``allocation_calls`` / ``cache_hits`` /
    ``disk_hits``) accumulate across the dual-mode and fixed-mode
    segmentation passes exactly as the fused compiler accumulated them,
    so ``CompiledProgram.stats`` is unchanged by the decomposition.
    """

    graph: Graph
    hardware: DualModeHardwareAbstraction
    options: object  # CompilerOptions; untyped here to avoid an import cycle
    cache: Optional[AllocationCache] = None
    #: Optional per-run :class:`~repro.core.memo.SolveMemo`.  Set by the
    #: compiler when its owner (a DSE run, a compile batch) wants solve
    #: reuse across compiles; the segmentation passes thread it into
    #: their ``SegmentationOptions``.
    solve_memo: Optional[object] = None
    #: Optional shared :class:`~repro.core.solverpool.SolverPool`.  Set
    #: by the compiler (from its owner's pool, or an ephemeral one built
    #: from ``options.solve_jobs``); the segmentation passes thread it
    #: into their ``SegmentationOptions`` so the DP dispatches window
    #: solves as parallel wavefront batches.
    solver_pool: Optional[object] = None
    #: Telemetry bundle (:class:`~repro.obs.Observability`).  Defaults to
    #: the no-op :data:`~repro.obs.NULL_OBS`; the runner opens a span per
    #: pass and the segmentation passes hand it to their segmenters.
    obs: object = NULL_OBS
    compiler_name: str = "cmswitch"

    # Products of the passes.
    profiled: Optional[List[ProfiledOperator]] = None
    units: Optional[List[FlattenedUnit]] = None
    segmenter: Optional[NetworkSegmenter] = None
    boundaries: Optional[List[Tuple[int, int]]] = None
    result: Optional[SegmentationResult] = None
    fallback_used: bool = False
    meta_program: Optional[object] = None

    # Solver accounting (dual-mode pass + fixed-mode fallback pass).
    allocation_calls: int = 0
    cache_hits: int = 0
    disk_hits: int = 0
    #: Wall time attributed to segmentation + plan building, mirroring the
    #: fused compiler's ``dp_seconds`` metadata field.
    dp_seconds: float = 0.0

    # Instrumentation maintained by the Pipeline runner.
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    trace: List[TraceEvent] = field(default_factory=list)
    #: Free-form per-pass annotations (merged into ``CompiledProgram.stats``).
    extras: Dict[str, object] = field(default_factory=dict)
    #: ``time.perf_counter()`` at pipeline start (set by the runner).
    started: float = 0.0

    @property
    def solve_attempts(self) -> int:
        """Allocator invocations, fresh and cache-served combined."""
        return self.allocation_calls + self.cache_hits

    def stats_payload(self) -> Dict[str, float]:
        """The solver-counter block of ``CompiledProgram.stats``."""
        attempts = self.solve_attempts
        return {
            "allocator_solves": self.allocation_calls,
            "allocation_cache_hits": self.cache_hits,
            "allocation_disk_hits": self.disk_hits,
            "allocation_cache_hit_rate": (
                self.cache_hits / attempts if attempts else 0.0
            ),
        }
