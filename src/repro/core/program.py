"""Compiled-program data structures.

The result of compiling a graph for a dual-mode CIM chip is a sequence of
*segments* (the paper's ``S_{i,j}``), each with a per-operator allocation
of compute- and memory-mode arrays, the latency the cost model predicts
for it, and the overhead of transitioning from the previous segment.  The
code generator additionally lowers the schedule to a meta-operator flow
(:mod:`repro.core.metaop`).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..cost.arithmetic import OperatorProfile
from ..cost.latency import OperatorAllocation
from ..cost.switching import SegmentResources
from ..hardware.deha import DualModeHardwareAbstraction


@dataclass
class SegmentPlan:
    """One network segment with its resource allocation and costs.

    Attributes:
        index: Position of the segment in execution order.
        operator_names: Names of the CIM-mappable operators in the segment
            (topological order).
        allocations: Per-operator array allocation.
        profiles: Per-operator cost profiles (kept for reporting).
        intra_cycles: ``T_intra`` — pipelined execution latency.
        inter_cycles: ``T_inter`` — transition cost from the previous
            segment (write-back + mode switch + weight reload).
        inter_breakdown: Per-component breakdown of ``inter_cycles``.
        resources: Aggregate compute/memory array usage.
        boundary_memory_arrays: Idle arrays switched to memory mode to keep
            this segment's live outputs on chip across the boundary (only a
            dual-mode compiler sets this).
    """

    index: int
    operator_names: List[str]
    allocations: Dict[str, OperatorAllocation]
    profiles: Dict[str, OperatorProfile]
    intra_cycles: float
    inter_cycles: float
    inter_breakdown: Dict[str, float] = field(default_factory=dict)
    resources: Optional[SegmentResources] = None
    boundary_memory_arrays: int = 0

    @property
    def total_cycles(self) -> float:
        """Latency contributed by this segment including its transition."""
        return self.intra_cycles + self.inter_cycles

    @property
    def compute_arrays(self) -> int:
        """Total compute-mode arrays used by the segment."""
        return sum(alloc.compute_arrays for alloc in self.allocations.values())

    @property
    def memory_arrays(self) -> int:
        """Total memory-mode arrays used by the segment (incl. boundary buffers)."""
        operator_memory = sum(alloc.memory_arrays for alloc in self.allocations.values())
        return operator_memory + self.boundary_memory_arrays

    @property
    def memory_array_ratio(self) -> float:
        """Fraction of the segment's arrays operating in memory mode."""
        total = self.compute_arrays + self.memory_arrays
        return self.memory_arrays / total if total else 0.0

    def describe(self) -> str:
        """One-line summary used by reports (Fig. 15-style)."""
        ops = ", ".join(self.operator_names)
        return (
            f"segment {self.index}: [{ops}] compute={self.compute_arrays} "
            f"memory={self.memory_arrays} intra={self.intra_cycles:.0f}cyc "
            f"inter={self.inter_cycles:.0f}cyc"
        )


@dataclass
class CompiledProgram:
    """Full compilation result for one graph on one hardware target.

    Attributes:
        graph_name: Name of the compiled graph.
        compiler_name: Which compiler produced the result ("cmswitch",
            "cim-mlc", "puma", "occ").
        hardware: Hardware abstraction the program targets.
        segments: Segment plans in execution order.
        block_repeat: Multiplier applied to the compiled graph's latency to
            obtain the end-to-end model latency (transformer models are
            compiled per block and reused across layers).
        compile_seconds: Wall-clock compilation time.
        metadata: Free-form extra information (workload, options, ...).
        stats: Compilation statistics — allocator solve count, shared
            allocation-cache hits and hit rate, wall time.  Populated by
            :class:`~repro.core.compiler.CMSwitchCompiler` and surfaced
            per job by :class:`repro.service.CompileService`.
    """

    graph_name: str
    compiler_name: str
    hardware: DualModeHardwareAbstraction
    segments: List[SegmentPlan]
    block_repeat: float = 1.0
    compile_seconds: float = 0.0
    metadata: Dict = field(default_factory=dict)
    stats: Dict = field(default_factory=dict)
    #: Lowered meta-operator flow (set when code generation is enabled).
    meta_program: Optional[object] = None

    # ------------------------------------------------------------------ #
    # latency summaries
    # ------------------------------------------------------------------ #
    @property
    def graph_cycles(self) -> float:
        """Latency of one pass over the compiled graph."""
        return sum(segment.total_cycles for segment in self.segments)

    @property
    def end_to_end_cycles(self) -> float:
        """Latency of the whole model (graph latency times block repeat)."""
        return self.graph_cycles * self.block_repeat

    @property
    def end_to_end_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.hardware.cycles_to_ms(self.end_to_end_cycles)

    @property
    def intra_cycles(self) -> float:
        """Total intra-segment cycles (one graph pass)."""
        return sum(segment.intra_cycles for segment in self.segments)

    @property
    def inter_cycles(self) -> float:
        """Total inter-segment cycles (one graph pass)."""
        return sum(segment.inter_cycles for segment in self.segments)

    @property
    def switch_cycles(self) -> float:
        """Cycles spent purely on compute/memory mode switches."""
        return sum(segment.inter_breakdown.get("mode_switch", 0.0) for segment in self.segments)

    @property
    def switch_overhead_fraction(self) -> float:
        """Share of total time spent on mode switching (§5.5 metric)."""
        total = self.graph_cycles
        return self.switch_cycles / total if total else 0.0

    @property
    def num_segments(self) -> int:
        """Number of segments."""
        return len(self.segments)

    @property
    def mean_memory_array_ratio(self) -> float:
        """Average memory-mode array share across segments (Fig. 16 metric).

        Weighted by segment execution time so long-running segments
        dominate, matching "the average proportion of arrays operating in
        memory mode across all segments".
        """
        total_time = sum(s.intra_cycles for s in self.segments)
        # Fall back to the unweighted mean when any segment reports a
        # non-finite latency: `ratio * inf` (and 0 * inf in particular)
        # would otherwise leak a NaN into the report.
        if total_time <= 0 or not math.isfinite(total_time):
            segments = self.segments or []
            if not segments:
                return 0.0
            return sum(s.memory_array_ratio for s in segments) / len(segments)
        weighted = sum(s.memory_array_ratio * s.intra_cycles for s in self.segments)
        return weighted / total_time

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """SHA-256 digest of the program's *semantic* content.

        Covers everything that defines the compiled artifact — graph
        and compiler names, hardware fingerprint, block repeat, every
        segment's operators / allocations / latencies / transition
        breakdown / resources / boundary buffers, and the rendered
        meta-operator flow.  Deliberately excludes wall-clock material
        (``compile_seconds``, ``stats``, ``metadata``): two compiles of
        the same graph are *bit-identical* exactly when their
        fingerprints match, regardless of how long they took or which
        cache tier served the solves.  Floats are hex-encoded so the
        digest captures their exact bits, not a decimal rounding.
        """

        def _float(value: float) -> str:
            return float(value).hex()

        def _resources(resources) -> Optional[List]:
            if resources is None:
                return None
            return [
                resources.compute_arrays,
                resources.memory_arrays,
                resources.live_output_elements,
                resources.static_weight_elements,
                resources.idle_arrays,
            ]

        payload = {
            "graph_name": self.graph_name,
            "compiler_name": self.compiler_name,
            "hardware": self.hardware.fingerprint(),
            "block_repeat": _float(self.block_repeat),
            "segments": [
                {
                    "index": segment.index,
                    "operators": list(segment.operator_names),
                    "allocations": {
                        name: [alloc.compute_arrays, alloc.memory_arrays]
                        for name, alloc in segment.allocations.items()
                    },
                    "intra": _float(segment.intra_cycles),
                    "inter": _float(segment.inter_cycles),
                    "breakdown": {
                        key: _float(value)
                        for key, value in segment.inter_breakdown.items()
                    },
                    "resources": _resources(segment.resources),
                    "boundary_memory_arrays": segment.boundary_memory_arrays,
                }
                for segment in self.segments
            ],
            "meta_program": (
                self.meta_program.render() if self.meta_program is not None else None
            ),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def allocation_table(self) -> List[Dict]:
        """Rows describing every operator's allocation (Fig. 15 data)."""
        rows: List[Dict] = []
        for segment in self.segments:
            for name in segment.operator_names:
                allocation = segment.allocations[name]
                rows.append(
                    {
                        "segment": segment.index,
                        "operator": name,
                        "compute_arrays": allocation.compute_arrays,
                        "memory_arrays": allocation.memory_arrays,
                    }
                )
        return rows

    def summary(self) -> str:
        """Multi-line human-readable compilation summary."""
        lines = [
            f"{self.compiler_name} program for {self.graph_name!r} on {self.hardware.name}",
            f"  segments           : {self.num_segments}",
            f"  graph latency      : {self.graph_cycles:,.0f} cycles",
            f"  end-to-end latency : {self.end_to_end_cycles:,.0f} cycles "
            f"({self.end_to_end_ms:.3f} ms, block repeat {self.block_repeat:g})",
            f"  intra / inter      : {self.intra_cycles:,.0f} / {self.inter_cycles:,.0f} cycles",
            f"  mode-switch share  : {100.0 * self.switch_overhead_fraction:.2f} %",
            f"  memory-array ratio : {100.0 * self.mean_memory_array_ratio:.1f} %",
            f"  compile time       : {self.compile_seconds:.3f} s",
        ]
        return "\n".join(lines)
