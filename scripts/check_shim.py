#!/usr/bin/env python3
"""CI gate for the deprecation shims and the pipeline's instrumentation.

Compiles one model through the legacy ``repro.compile_model`` shim and
through ``repro.api.Session`` and asserts:

1. the shim emits a ``DeprecationWarning``;
2. the two programs are bit-identical
   (``CompiledProgram.fingerprint()``);
3. per-pass timing stats are present in ``CompiledProgram.stats``
   (every pass of the standard sequence that ran for the options used).

Run from the repository root::

    PYTHONPATH=src python scripts/check_shim.py
"""

from __future__ import annotations

import sys
import warnings


def main() -> int:
    from repro.api import Session
    from repro.core import CompilerOptions, compile_model
    from repro.hardware import small_test_chip
    from repro.models import Workload, build_model

    hardware = small_test_chip()
    graph = build_model("tiny-mlp", Workload(batch_size=1))
    options = CompilerOptions(generate_code=False)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        legacy = compile_model(graph, hardware, options)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert deprecations, "compile_model() shim emitted no DeprecationWarning"
    assert "Session" in str(deprecations[0].message), deprecations[0].message
    print(f"shim warning ok: {deprecations[0].message}")

    session = Session(hardware=hardware, options=options)
    fresh = session.compile(graph)
    assert legacy.fingerprint() == fresh.fingerprint(), (
        "legacy shim and Session produced different programs:\n"
        f"  legacy  {legacy.fingerprint()}\n"
        f"  session {fresh.fingerprint()}"
    )
    print(f"bit-identity ok: {fresh.fingerprint()}")

    expected_passes = {
        "flatten",
        "partition",
        "segment",
        "allocate",
        "fixed_fallback",
        "refine",
    }  # codegen is off for these options
    for name, program in (("legacy", legacy), ("session", fresh)):
        timings = program.stats.get("pass_seconds")
        assert timings, f"{name} program carries no pass_seconds stats"
        missing = expected_passes - set(timings)
        assert not missing, f"{name} program missing pass timings: {missing}"
        assert all(seconds >= 0.0 for seconds in timings.values()), timings
    print(f"pass timings ok: {sorted(fresh.stats['pass_seconds'])}")
    print("all shim checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
