"""Tests for the pass-based compile pipeline (repro.pipeline)."""

import pytest

from repro.core import CMSwitchCompiler, CompilerOptions
from repro.pipeline import (
    Codegen,
    FixedModeFallback,
    Pass,
    Pipeline,
    PipelineContext,
    build_pipeline,
    default_passes,
    finalize,
)

STANDARD_NAMES = [
    "flatten",
    "partition",
    "segment",
    "allocate",
    "fixed_fallback",
    "refine",
    "codegen",
]


def _ctx(graph, hardware, **option_kwargs):
    options = CompilerOptions(**option_kwargs)
    return PipelineContext(graph=graph, hardware=hardware, options=options)


class TestPipelineStructure:
    def test_default_pass_order(self):
        assert build_pipeline().names == STANDARD_NAMES

    def test_get_returns_pass_by_name(self):
        pipeline = build_pipeline()
        assert isinstance(pipeline.get("codegen"), Codegen)
        with pytest.raises(KeyError, match="no pass named"):
            pipeline.get("nope")

    def test_duplicate_names_rejected(self):
        pipeline = build_pipeline()
        with pytest.raises(ValueError, match="already registered"):
            pipeline.append(Codegen())

    def test_replace_swaps_in_place(self):
        class FakeSegment(Pass):
            name = "segment"

            def run(self, ctx):  # pragma: no cover - structure-only test
                pass

        pipeline = build_pipeline().replace("segment", FakeSegment())
        assert pipeline.names == STANDARD_NAMES
        assert isinstance(pipeline.get("segment"), FakeSegment)

    def test_insert_before_after_remove(self):
        class Probe(Pass):
            name = "probe"

            def run(self, ctx):
                ctx.extras["probe_ran"] = True

        pipeline = build_pipeline().insert_after("allocate", Probe())
        assert pipeline.names.index("probe") == pipeline.names.index("allocate") + 1
        pipeline.remove("probe")
        assert "probe" not in pipeline.names
        pipeline.insert_before("flatten", Probe())
        assert pipeline.names[0] == "probe"

    def test_default_passes_returns_fresh_instances(self):
        a, b = default_passes(), default_passes()
        assert [p.name for p in a] == [p.name for p in b]
        assert all(x is not y for x, y in zip(a, b))


class TestPipelineExecution:
    def test_pass_seconds_cover_every_executed_pass(self, small_chip, tiny_mlp_graph):
        program = CMSwitchCompiler(
            small_chip, CompilerOptions(generate_code=False)
        ).compile(tiny_mlp_graph)
        timings = program.stats["pass_seconds"]
        # codegen is disabled; everything else ran and was timed.
        assert set(timings) == set(STANDARD_NAMES) - {"codegen"}
        assert all(seconds >= 0.0 for seconds in timings.values())
        assert program.metadata["passes"] == [n for n in STANDARD_NAMES if n != "codegen"]

    def test_disabled_passes_emit_skip_events(self, small_chip, tiny_mlp_graph):
        ctx = _ctx(
            tiny_mlp_graph, small_chip, allow_memory_mode=False, generate_code=False
        )
        build_pipeline().run(ctx)
        skipped = {e.pass_name for e in ctx.trace if e.kind == "skip"}
        assert skipped == {"fixed_fallback", "codegen"}
        assert "fixed_fallback" not in ctx.pass_seconds

    def test_hooks_see_start_end_and_context(self, small_chip, tiny_mlp_graph):
        events = []
        pipeline = build_pipeline(hooks=[lambda e, ctx: events.append((e.pass_name, e.kind))])
        ctx = _ctx(tiny_mlp_graph, small_chip, generate_code=False)
        pipeline.run(ctx)
        assert ("flatten", "start") in events and ("flatten", "end") in events
        assert events.index(("flatten", "end")) < events.index(("segment", "start"))

    def test_custom_pass_can_observe_and_annotate(self, small_chip, tiny_mlp_graph):
        class CountUnits(Pass):
            name = "count_units"

            def run(self, ctx):
                ctx.extras["unit_count"] = len(ctx.units)

        pipeline = build_pipeline().insert_after("partition", CountUnits())
        ctx = _ctx(tiny_mlp_graph, small_chip, generate_code=False)
        pipeline.run(ctx)
        program = finalize(ctx)
        assert program.stats["unit_count"] == len(ctx.units) > 0
        assert "count_units" in ctx.pass_seconds

    def test_refine_pass_reports_duplication(self, small_chip, tiny_mlp_graph):
        ctx = _ctx(tiny_mlp_graph, small_chip, generate_code=False)
        build_pipeline().run(ctx)
        program = finalize(ctx)
        assert program.stats["refine_extra_compute_arrays"] >= 0
        # With refinement off the pass skips itself and the stat is absent.
        ctx = _ctx(tiny_mlp_graph, small_chip, refine=False, generate_code=False)
        build_pipeline().run(ctx)
        assert "refine_extra_compute_arrays" not in finalize(ctx).stats

    def test_fallback_pass_accumulates_counters(self, small_chip, tiny_mlp_graph):
        ctx = _ctx(tiny_mlp_graph, small_chip, generate_code=False)
        build_pipeline().run(ctx)
        # The fixed-mode pass adds its own solver work (fresh solves or
        # cache hits) on top of the dual-mode pass's.
        dual_attempts = ctx.result.allocation_calls + ctx.result.cache_hits
        assert ctx.solve_attempts > dual_attempts
        program = finalize(ctx)
        assert program.stats["allocator_solves"] == ctx.allocation_calls

    def test_finalize_without_run_is_an_error(self, small_chip, tiny_mlp_graph):
        ctx = _ctx(tiny_mlp_graph, small_chip)
        with pytest.raises(RuntimeError, match="completed pipeline run"):
            finalize(ctx)

    def test_pipeline_without_fallback_matches_option(self, small_chip, tiny_mlp_graph):
        # Removing the pass and disabling the option are equivalent
        # pipeline configurations.
        ctx_removed = _ctx(tiny_mlp_graph, small_chip, generate_code=False)
        build_pipeline().remove("fixed_fallback").run(ctx_removed)
        ctx_option = _ctx(
            tiny_mlp_graph,
            small_chip,
            fixed_mode_fallback=False,
            generate_code=False,
        )
        build_pipeline().run(ctx_option)
        assert (
            finalize(ctx_removed).fingerprint() == finalize(ctx_option).fingerprint()
        )

    def test_compiler_accepts_custom_pipeline(self, small_chip, tiny_mlp_graph):
        events = []
        pipeline = build_pipeline(hooks=[lambda e, ctx: events.append(e.kind)])
        compiler = CMSwitchCompiler(
            small_chip, CompilerOptions(generate_code=False), pipeline=pipeline
        )
        program = compiler.compile(tiny_mlp_graph)
        assert program.num_segments >= 1
        assert "end" in events


class TestFixedModeFallbackGating:
    def test_enabled_only_for_dual_mode_with_fallback(self, small_chip, tiny_mlp_graph):
        fallback = FixedModeFallback()
        dual = _ctx(tiny_mlp_graph, small_chip)
        assert fallback.enabled(dual)
        fixed = _ctx(tiny_mlp_graph, small_chip, allow_memory_mode=False)
        assert not fallback.enabled(fixed)
        no_fb = _ctx(tiny_mlp_graph, small_chip, fixed_mode_fallback=False)
        assert not fallback.enabled(no_fb)


class TestOptionsNormalisation:
    def test_fixed_mode_canonicalises_signature(self):
        # The meaningless fallback flag must not split option identities
        # (DSE point keys, dedup groups) for fixed-mode configurations …
        from repro.dse.space import options_signature

        with_flag = CompilerOptions(allow_memory_mode=False, fixed_mode_fallback=True)
        without = CompilerOptions(allow_memory_mode=False, fixed_mode_fallback=False)
        assert options_signature(with_flag) == options_signature(without)

    def test_reenabling_memory_mode_restores_fallback(self):
        # … but the field itself is untouched, so replacing along a DSE
        # axis from a fixed-mode base re-enables the fallback pass.
        from dataclasses import replace

        base = CompilerOptions(allow_memory_mode=False)
        dual = replace(base, allow_memory_mode=True)
        assert dual.fixed_mode_fallback is True
        assert FixedModeFallback().enabled(
            PipelineContext(graph=None, hardware=None, options=dual)
        )

    def test_dual_mode_keeps_fallback(self):
        assert CompilerOptions().fixed_mode_fallback is True

    def test_segmentation_options_reject_bad_window(self):
        from repro.core import SegmentationOptions

        with pytest.raises(ValueError, match="max_segment_operators"):
            SegmentationOptions(max_segment_operators=0)
        with pytest.raises(ValueError, match="max_segment_operators"):
            CompilerOptions(max_segment_operators=True)
