"""Command-line interface for the CMSwitch reproduction.

Installed as ``python -m repro.cli`` (or used programmatically through
:func:`main`).  Every compile-shaped sub-command is a thin shim over
:class:`repro.api.Session` — the CLI builds one session (hardware,
cache directory, backend, pool width) and routes the work through it,
so the command line and the Python API cannot drift apart.  Unknown
model names exit with code 2 and the list of registered models, never
a raw traceback.  Sub-commands:

* ``models`` — list the registered benchmark networks.
* ``hardware`` — show a hardware preset's DEHA parameters.
* ``compile`` — compile one model for one hardware preset and print the
  plan summary (optionally the meta-operator flow and per-segment table).
* ``compile-batch`` — compile many models through the
  :class:`repro.service.CompileService` (shared allocation cache, thread
  or process pool) and print per-job statistics including the cache hit
  rate.  ``--cache-dir`` persists the cache on disk so later invocations
  (and process-pool workers) reuse earlier solves.
* ``compare`` — compile with CMSwitch and the baselines and print speedups.
* ``experiment`` — run one of the paper-figure experiments
  (``--cache-dir`` persists allocation solves across runs).
* ``dse`` — explore a design space (models x workloads x array counts x
  mode splits) through :mod:`repro.dse`: pluggable search strategies,
  cache-aware planning, resumable run directories, Pareto reports.
  ``--objective trace-p99 --trace FILE`` optimises tail latency under a
  request trace instead of single-inference latency.
* ``replay`` — replay a request trace (file or seeded synthetic
  traffic) through the serving simulator (:mod:`repro.sim.replay`) and
  report throughput, p50/p99 latency, utilisation and switch share.
* ``cache`` — inspect and maintain a persistent allocation-cache
  directory (``stats`` / ``prune`` / ``clear``).
* ``serve`` — run the compile daemon (:mod:`repro.serve`): a long-lived
  HTTP service over one shared cache, coalescing concurrent identical
  requests into single compiles.  SIGTERM drains gracefully.
* ``cache-server`` — run the networked allocation-cache tier other
  machines' sessions and daemons mount via ``--remote-cache`` /
  ``Session(remote_cache=...)``.

Examples::

    python -m repro.cli compile llama2-7b --hardware dynaplasia --batch 1 --seq-len 128
    python -m repro.cli compile-batch resnet18 bert vgg16 --jobs 4 --repeat 2
    python -m repro.cli compile-batch resnet18 bert --cache-dir ~/.cache/repro-allocs
    python -m repro.cli compile-batch resnet18 bert --backend process --cache-dir /tmp/ac
    python -m repro.cli compare resnet18 --batch 8
    python -m repro.cli experiment fig14 --batch-sizes 1 8
    python -m repro.cli dse resnet18 --hardware dynaplasia --arrays 64 96 128 \
        --modes dual fixed --strategy grid --cache-dir /tmp/ac
    python -m repro.cli cache stats --cache-dir /tmp/ac
    python -m repro.cli cache prune --cache-dir /tmp/ac --max-age 7d --max-bytes 64MB
    python -m repro.cli cache-server --cache-dir /srv/repro-cache --port 8741
    python -m repro.cli serve --cache-dir /tmp/ac --remote-cache http://cache-host:8741
    python -m repro.cli compile-batch resnet18 --json-out stats.json
"""

from __future__ import annotations

import argparse
import logging
import re
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .api import Session
from .baselines import CIMMLCCompiler, OCCCompiler, PUMACompiler
from .core.compiler import CompilerOptions
from .hardware.presets import PRESETS, get_preset
from .models.registry import is_transformer, list_models
from .models.workload import Phase, Workload

LOGGER = logging.getLogger("repro")


def _configure_logging(verbosity: int) -> None:
    """Route ``repro`` status logging to stderr at the requested level.

    The CLI is quiet by default (WARNING): stdout carries only results
    and machine-checkable summary lines, never progress chatter.  ``-v``
    surfaces status lines (INFO), ``-vv`` debug detail.  The handler is
    re-created on every call so repeated in-process invocations (tests,
    notebooks) always write to the *current* ``sys.stderr``.
    """
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_cli = True
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(level)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared observability flags of the compile-shaped sub-commands."""
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help=(
            "record a hierarchical span trace of this run and write it "
            "as Chrome/Perfetto trace_event JSON (open in chrome://tracing "
            "or ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a wall-time profile (top spans + metric counters) at the end",
    )


def _session_trace(args: argparse.Namespace):
    """The ``Session(trace=...)`` value implied by --trace-out/--profile."""
    if args.trace_out:
        return args.trace_out
    return True if args.profile else None


def _finish_obs(session: Session, args: argparse.Namespace) -> None:
    """Export the trace / print the profile after a traced command."""
    if args.trace_out:
        path = session.export_trace()
        print(f"chrome trace: {path}")
    if args.profile:
        print(session.profile_report())


def _reject_unknown_models(models: Sequence[str]) -> Optional[int]:
    """Shared unknown-model handling: exit code 2 + the available names.

    Every sub-command that accepts model names calls this before doing
    any work, so a typo produces the same two-line error (and the list
    of registered models) everywhere instead of a command-specific
    traceback.

    Returns:
        ``2`` when any name is unknown (after printing the error to
        stderr), ``None`` when all names are registered.
    """
    known = set(list_models())
    unknown = [name for name in models if name not in known]
    if not unknown:
        return None
    print(
        f"error: unknown model name(s): {', '.join(unknown)}\n"
        f"available models: {', '.join(list_models())}",
        file=sys.stderr,
    )
    return 2


def _workload_for_model(model: str, args: argparse.Namespace) -> Workload:
    """Build a workload for ``model`` from the shared CLI arguments."""
    phase = Phase(args.phase) if args.phase else (
        Phase.ENCODE if is_transformer(model) else Phase.PREFILL
    )
    return Workload(
        batch_size=args.batch,
        seq_len=args.seq_len,
        output_len=args.output_len,
        phase=phase,
    )


def _workload_from_args(args: argparse.Namespace) -> Workload:
    """Build a workload from the shared CLI arguments (single-model commands)."""
    return _workload_for_model(args.model, args)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", help="registered model name (see the 'models' command)")
    parser.add_argument("--hardware", default="dynaplasia", choices=sorted(PRESETS))
    parser.add_argument("--batch", type=int, default=1, help="batch size")
    parser.add_argument("--seq-len", type=int, default=64, help="input sequence length")
    parser.add_argument("--output-len", type=int, default=64, help="generated tokens")
    parser.add_argument(
        "--phase",
        choices=[phase.value for phase in Phase],
        default=None,
        help="transformer phase (default: encode for transformers)",
    )


def cmd_models(_: argparse.Namespace) -> int:
    """List registered models."""
    for name in list_models():
        print(name)
    return 0


def cmd_hardware(args: argparse.Namespace) -> int:
    """Print a hardware preset summary."""
    print(get_preset(args.preset).summary())
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile one model and print the plan."""
    failure = _reject_unknown_models([args.model])
    if failure is not None:
        return failure
    session = Session(hardware=args.hardware)
    program = session.compile(
        args.model,
        workload=_workload_from_args(args),
        options=CompilerOptions(generate_code=args.show_metaops),
    )
    print(program.summary())
    if args.show_segments:
        print()
        for segment in program.segments:
            print(segment.describe())
    if args.show_metaops and program.meta_program is not None:
        print()
        print(program.meta_program.render())
    return 0


def cmd_compile_batch(args: argparse.Namespace) -> int:
    """Compile several models through a session and print stats."""
    if not args.models:
        print(
            "error: compile-batch requires at least one model name\n"
            "usage: repro compile-batch MODEL [MODEL ...] [--cache-dir DIR] "
            "[--backend {thread,process}]\n"
            "       (run 'repro models' to list the registered models)",
            file=sys.stderr,
        )
        return 2
    failure = _reject_unknown_models(args.models)
    if failure is not None:
        return failure

    options = None
    if args.speculative:
        options = CompilerOptions(speculative_solves=True)
    session = Session(
        hardware=args.hardware,
        options=options,
        max_workers=args.jobs,
        solve_jobs=args.solve_jobs,
        use_cache=not args.no_cache,
        backend=args.backend,
        cache_dir=args.cache_dir,
        remote_cache=args.remote_cache,
        trace=_session_trace(args),
    )
    jobs = []
    for round_index in range(max(1, args.repeat)):
        for model in args.models:
            workload = _workload_for_model(model, args)
            label = model if args.repeat <= 1 else f"{model}#{round_index + 1}"
            jobs.append(session.job(model, workload=workload, label=label))

    results = session.compile_batch(jobs)

    header = (
        f"{'job':16s} {'latency (ms)':>13s} {'segments':>9s} {'solves':>7s} "
        f"{'cache hits':>11s} {'disk hits':>10s} {'hit rate':>9s} {'wall (s)':>9s}"
    )
    print(header)
    failures = 0
    total_solves = 0
    total_disk_hits = 0
    for result in results:
        stats = result.stats
        # Failed jobs may still have solved (NoFeasiblePlanError keeps its
        # pre-failure statistics); the totals must reflect that work.
        total_solves += stats.get("allocator_solves", 0)
        total_disk_hits += stats.get("allocation_disk_hits", 0)
        if not result.ok:
            failures += 1
            print(f"{result.job.name:16s} FAILED: {result.error}")
            continue
        print(
            f"{result.job.name:16s} {result.program.end_to_end_ms:13.3f} "
            f"{result.program.num_segments:9d} {stats.get('allocator_solves', 0):7d} "
            f"{stats.get('allocation_cache_hits', 0):11d} "
            f"{stats.get('allocation_disk_hits', 0):10d} "
            f"{100.0 * stats.get('allocation_cache_hit_rate', 0.0):8.1f}% "
            f"{result.wall_seconds:9.3f}"
        )
    pass_totals: dict = {}
    for result in results:
        for pass_name, seconds in (result.stats.get("pass_seconds") or {}).items():
            pass_totals[pass_name] = pass_totals.get(pass_name, 0.0) + seconds
    if pass_totals:
        print(
            "pass wall time: "
            + " | ".join(
                f"{name} {seconds:.3f}s" for name, seconds in pass_totals.items()
            )
        )
    if args.backend == "thread":
        aggregate = session.cache_stats
        print(
            f"cache: {aggregate.hits} hits / {aggregate.lookups} lookups "
            f"({100.0 * aggregate.hit_rate:.1f}%), {aggregate.evictions} evictions"
        )
        if session.cache is not None and session.cache.store is not None:
            disk = session.cache.store.stats
            print(
                f"disk store: {disk.hits} hits, {disk.stores} stores, "
                f"{disk.evictions} evictions ({session.cache.store.root})"
            )
    elif args.cache_dir:
        # Process workers keep their own store instances; the per-job rows
        # above carry their disk hits, and the directory itself reports
        # what the whole fleet left behind.
        from .core.store import DiskCacheStore

        usage = DiskCacheStore(args.cache_dir).usage()
        print(
            f"disk store: {usage['files']} entries, "
            f"{usage['bytes'] / (1024 * 1024):.1f} MB ({args.cache_dir})"
        )
    # Machine-checkable summary: CI smoke greps these lines to assert a
    # disk-warm second invocation performs zero solves (and that the
    # warm-start behaviour is visible as disk-tier hits).
    print(f"total allocator solves: {total_solves}")
    print(f"total disk hits: {total_disk_hits}")
    pool_stats = session.service.solver_pool_stats()
    if pool_stats is not None:
        print(
            f"solver pool: {pool_stats['workers']} workers, "
            f"{pool_stats['dispatched']} dispatched, "
            f"{pool_stats['dedup_hits']} dedup hits, "
            f"{pool_stats['solve_seconds']:.3f}s solver-core in "
            f"{pool_stats['wall_seconds']:.3f}s pool wall, "
            f"{pool_stats['speculative_waste']} speculative waste"
        )
    if args.json_out:
        import json

        report = {
            "jobs": [
                {
                    "label": result.job.name,
                    "ok": result.ok,
                    "error": result.error,
                    "latency_ms": result.program.end_to_end_ms if result.ok else None,
                    "segments": result.program.num_segments if result.ok else None,
                    "allocator_solves": result.stats.get("allocator_solves", 0),
                    "cache_hits": result.stats.get("allocation_cache_hits", 0),
                    "disk_hits": result.stats.get("allocation_disk_hits", 0),
                    "hit_rate": result.stats.get("allocation_cache_hit_rate", 0.0),
                    "wall_seconds": result.wall_seconds,
                }
                for result in results
            ],
            "totals": {
                "jobs": len(results),
                "failures": failures,
                "allocator_solves": total_solves,
                "disk_hits": total_disk_hits,
            },
        }
        if args.backend == "thread" and session.cache is not None:
            report["cache"] = session.cache_stats.to_dict()
        if pool_stats is not None:
            report["solver_pool"] = pool_stats
        out = Path(args.json_out).expanduser()
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        LOGGER.info("json report: %s", out)
    _finish_obs(session, args)
    session.close()
    return 1 if failures else 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Compile with every compiler and print normalised latencies."""
    failure = _reject_unknown_models([args.model])
    if failure is not None:
        return failure
    session = Session(
        hardware=args.hardware, options=CompilerOptions(generate_code=False)
    )
    hardware = session.hardware
    workload = _workload_from_args(args)
    compilers = {
        "puma": PUMACompiler(hardware),
        "occ": OCCCompiler(hardware),
        "cim-mlc": CIMMLCCompiler(hardware),
    }
    graph = session.job(args.model, workload=workload).resolve_graph()
    results = {name: compiler.compile(graph) for name, compiler in compilers.items()}
    results["cmswitch"] = session.compile(graph)
    baseline = results["cim-mlc"].end_to_end_cycles
    print(f"{'compiler':10s} {'latency (ms)':>14s} {'vs CIM-MLC':>12s} {'memory arrays':>14s}")
    for name, program in results.items():
        print(
            f"{name:10s} {program.end_to_end_ms:14.3f} "
            f"{baseline / program.end_to_end_cycles:11.2f}x "
            f"{100 * program.mean_memory_array_ratio:13.1f}%"
        )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one of the paper-figure experiments and print its report."""
    from .core.cache import AllocationCache
    from .core.store import DiskCacheStore
    from .experiments import end_to_end, generative, workload_scale
    from .experiments import allocation_report as allocation
    from .experiments import compile_time, overheads
    from .hardware.presets import dynaplasia

    hardware = get_preset(args.hardware)
    # A persistent cache makes re-running (or widening) an experiment
    # reuse every allocation solve an earlier invocation already did.
    cache = None
    if getattr(args, "cache_dir", None):
        cache = AllocationCache(store=DiskCacheStore(args.cache_dir))
    if args.figure == "fig14":
        rows = end_to_end.run_end_to_end(
            hardware=hardware, batch_sizes=tuple(args.batch_sizes), cache=cache
        )
        print(end_to_end.render_report(rows))
    elif args.figure == "fig16":
        rows = workload_scale.run_workload_scale(
            hardware=hardware,
            batch_sizes=tuple(args.batch_sizes),
            sequence_lengths=tuple(args.sequence_lengths),
            cache=cache,
        )
        print(workload_scale.render_report(rows))
    elif args.figure == "fig17":
        rows = generative.run_generative(
            hardware=hardware, lengths=tuple(args.sequence_lengths), cache=cache
        )
        print(generative.render_report(rows))
    elif args.figure == "fig15":
        for model in ("vgg16", "opt-6.7b"):
            rows = allocation.allocation_report(model, hardware=hardware, cache=cache)
            print(allocation.render_report(model, rows))
            print()
    elif args.figure == "fig18":
        rows = compile_time.measure_compile_time(hardware=hardware, cache=cache)
        print(compile_time.render_report(rows))
    elif args.figure == "serving":
        from .experiments import serving

        rows = serving.run_slo_curve(
            presets=tuple(args.presets),
            num_requests=args.requests,
            seed=args.seed,
            cache=cache,
        )
        print(serving.render_report(rows))
    elif args.figure == "sec5.5":
        print(
            overheads.render_switch_report(
                overheads.switch_overhead(hardware=hardware, cache=cache)
            )
        )
        print()
        print(overheads.render_prime_report(overheads.prime_scalability(cache=cache)))
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(f"unknown figure {args.figure!r}")
    return 0


def _load_trace_or_none(path: str, usage: str):
    """Load a trace file, printing the CLI error contract on failure.

    A nonexistent/unreadable path or a malformed/newer-format file
    prints a two-line error (reason + usage) to stderr and returns
    ``None`` — callers exit 2, matching the unknown-model convention —
    never a raw traceback.
    """
    from .sim.traces import TraceFormatError, load_trace

    try:
        return load_trace(path)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"error: cannot read trace file {path!r}: {reason}\n{usage}", file=sys.stderr)
        return None
    except TraceFormatError as exc:
        print(f"error: invalid trace file: {exc}\n{usage}", file=sys.stderr)
        return None


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a request trace through the serving simulator."""
    import json

    from .sim.traces import save_trace, synthetic_trace

    usage = (
        "usage: repro replay --preset CHIP [--trace FILE | --synthetic "
        "{poisson,bursty,diurnal}] [--models M ...] [--requests N] "
        "[--rate RPS] [--seed N]"
    )
    if args.trace is not None:
        trace = _load_trace_or_none(args.trace, usage)
        if trace is None:
            return 2
        failure = _reject_unknown_models(trace.models)
        if failure is not None:
            return failure
    else:
        models = args.models or ["tiny-mlp", "tiny-cnn"]
        failure = _reject_unknown_models(models)
        if failure is not None:
            return failure
        # One --rate knob parameterises every generator: it is the mean
        # (poisson), the quiet-state base (bursty, bursts run 10x) or
        # the peak (diurnal, trough at a tenth).
        kwargs = {"poisson": {"rate_rps": args.rate},
                  "bursty": {"base_rate_rps": args.rate,
                             "burst_rate_rps": 10.0 * args.rate},
                  "diurnal": {"peak_rate_rps": args.rate,
                              "trough_rate_rps": args.rate / 10.0}}[args.synthetic]
        trace = synthetic_trace(
            args.synthetic,
            models,
            num_requests=args.requests,
            seed=args.seed,
            seq_len_buckets=tuple(args.seq_lens),
            batch_size=args.batch,
            **kwargs,
        )
    if args.save_trace:
        path = save_trace(trace, args.save_trace)
        LOGGER.info("trace written: %s", path)

    session = Session(
        hardware=args.preset,
        cache_dir=args.cache_dir,
        max_workers=args.jobs,
        trace=_session_trace(args),
    )
    result = session.replay(trace)
    print(result.render_report())
    metrics = result.metrics
    # Machine-checkable summary lines (the CI replay-smoke job greps
    # these, like compile-batch's solver totals).
    print(f"replay throughput: {metrics.throughput_rps:.6f} req/s")
    print(f"replay p50: {metrics.latency_p50_ms:.6f} ms")
    print(f"replay p99: {metrics.latency_p99_ms:.6f} ms")
    print(f"replay switch share: {metrics.switch_share:.6f}")
    print(f"total allocator solves: {result.allocator_solves}")
    print(f"total disk hits: {result.allocation_disk_hits}")
    if args.json_out:
        out = Path(args.json_out).expanduser()
        out.write_text(
            json.dumps(result.to_json_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        LOGGER.info("json report: %s", out)
    _finish_obs(session, args)
    return 1 if result.compile_errors else 0


def _parse_size(text: str) -> int:
    """Parse a byte size with an optional KB/MB/GB suffix (``"64MB"``)."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([kKmMgG][bB]?|[bB])?\s*", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (expected e.g. 1048576, 512KB, 64MB, 2GB)"
        )
    value = float(match.group(1))
    unit = (match.group(2) or "b").lower().rstrip("b")
    scale = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3}[unit]
    return int(value * scale)


def _parse_age(text: str) -> float:
    """Parse an age with an optional s/m/h/d suffix (``"7d"``, ``"90m"``).

    Case-insensitive, matching :func:`_parse_size`.
    """
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([smhdSMHD])?\s*", text)
    if not match:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r} (expected e.g. 3600, 90m, 12h, 7d)"
        )
    unit = (match.group(2) or "s").lower()
    scale = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}[unit]
    return float(match.group(1)) * scale


def cmd_dse(args: argparse.Namespace) -> int:
    """Explore a design space and print/persist the Pareto report."""
    from .dse import DesignSpace, RunState, RunStateError, make_strategy

    models = args.models or ["tiny-cnn"]
    failure = _reject_unknown_models(models)
    if failure is not None:
        return failure
    # The CLI spells the trace objective "trace-p99" (dashes, like every
    # other flag value); the library spells it "trace_p99".
    objective = args.objective.replace("-", "_")
    usage = (
        "usage: repro dse MODEL [MODEL ...] --objective trace-p99 --trace FILE "
        "[--fidelity {compile,greedy,cached}]"
    )
    trace = None
    if args.trace is not None:
        trace = _load_trace_or_none(args.trace, usage)
        if trace is None:
            return 2
        failure = _reject_unknown_models(trace.models)
        if failure is not None:
            return failure
    if objective == "trace_p99":
        if trace is None:
            print(
                f"error: --objective trace-p99 requires --trace FILE\n{usage}",
                file=sys.stderr,
            )
            return 2
        if args.fidelity in ("analytical", "auto"):
            print(
                "error: --objective trace-p99 needs real compiled plans; "
                f"--fidelity {args.fidelity} is not supported\n{usage}",
                file=sys.stderr,
            )
            return 2
    hardware = get_preset(args.hardware)
    arrays = args.arrays
    if arrays is None:
        # A tiny default sweep around the preset, so the bare command
        # demonstrates the engine without minutes of solves.
        arrays = sorted({max(1, hardware.num_arrays // 2), hardware.num_arrays})
    phase = Phase(args.phase) if args.phase else Phase.PREFILL
    workloads = [
        Workload(batch_size=batch, seq_len=seq_len, output_len=args.output_len, phase=phase)
        for batch in args.batch
        for seq_len in args.seq_len
    ]
    option_axes = {}
    if args.modes:
        option_axes["allow_memory_mode"] = [mode == "dual" for mode in args.modes]
    space = DesignSpace(
        models=models,
        base_hardware=hardware,
        workloads=workloads,
        hardware_axes={"num_arrays": [int(n) for n in arrays]},
        option_axes=option_axes,
    )

    run_dir = Path(args.run_dir) if args.run_dir else (
        Path(args.cache_dir).expanduser() / "_dse" if args.cache_dir else Path("dse-run")
    )
    try:
        state = RunState.open(
            run_dir,
            space.to_spec(),
            space.fingerprint(),
            objective=objective,
            strategy=args.strategy,
            resume=args.resume,
        )
    except (RunStateError, OSError) as exc:
        # OSError covers mistyped paths (a run dir that exists as a
        # regular file, an unwritable parent) — same clean exit as a
        # state-level refusal, never a raw traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    LOGGER.info(
        "dse: %s, strategy %s, objective %s, fidelity %s, run dir %s",
        space.describe(), args.strategy, objective, args.fidelity, run_dir,
    )
    if trace is not None:
        LOGGER.info("trace: %s", trace.describe())
    if args.fidelity == "auto" and args.strategy != "successive-halving":
        # Stays on stdout: this changes the strategy the user asked for.
        print(
            "note: --fidelity auto schedules rungs itself; using the "
            "successive-halving strategy (analytical rung 0, survivors "
            "climb greedy then compile fidelity)"
        )
    if state.space_changed:
        LOGGER.info(
            "note: resuming with a different design space; overlapping "
            "points are skipped by key"
        )
    if state.completed:
        LOGGER.info("resume: %d completed point(s) on record", len(state.completed))

    session = Session(
        hardware=hardware,
        cache_dir=args.cache_dir,
        backend=args.backend,
        max_workers=args.jobs,
        trace=_session_trace(args),
    )
    with state:
        result = session.explore(
            space,
            strategy=make_strategy(args.strategy, seed=args.seed),
            objective=objective,
            fidelity=args.fidelity,
            budget=args.budget,
            state=state,
            seed=args.seed,
            trace=trace,
        )

    # Infeasible design points (feasible=False, failed=False) are a
    # legitimate exploration outcome, not a failure exit; so are
    # cached-fidelity points the store could not answer (status "cold").
    failures = [r for r in result.new_records if r.failed]
    for record in result.new_records:
        if record.status == "cold":
            marker = "cold"
        elif record.feasible:
            marker = "ok"
        else:
            marker = "ERR" if record.failed else "infeasible"
        print(
            f"  {record.model:16s} arrays={record.num_arrays:<5d} "
            f"{'dual' if record.allow_memory_mode else 'fixed':5s} "
            f"latency={record.latency_ms:10.3f} ms energy={record.energy_mj:8.3f} mJ "
            f"solves={record.allocator_solves:4d} disk={record.disk_hits:4d} "
            f"[{record.fidelity}/{record.status}/{marker}]"
        )

    report = result.render_report()
    print(report)
    report_path = run_dir / "report.txt"
    report_path.write_text(report + "\n" + result.summary() + "\n", encoding="utf-8")
    csv_path = result.write_csv(run_dir / "pareto.csv")
    print(result.summary())
    LOGGER.info("report: %s", report_path)
    LOGGER.info("pareto csv: %s", csv_path)
    _finish_obs(session, args)
    return 1 if failures else 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect / prune / clear a persistent allocation-cache directory."""
    from .core.store import DiskCacheStore

    root = Path(args.cache_dir).expanduser()
    if not root.is_dir():
        # Constructing the store would mkdir the path — a query on a
        # mistyped (or non-directory) path must not create or crash.
        # For the read-only `stats` a directory that was never created
        # simply holds nothing: report empty usage and exit 0, the same
        # answer a just-cleared cache gives (scripts can poll a cache
        # dir before its first run without special-casing the error).
        if args.cache_command == "stats" and not root.exists():
            print(f"cache: 0 entries, 0.00 MB ({root})")
            return 0
        print(f"error: cache directory {root} does not exist", file=sys.stderr)
        return 2
    store = DiskCacheStore(root)

    def _print_usage(prefix: str = "") -> None:
        usage = store.usage()
        line = (
            f"{prefix}{usage['files']} entries, "
            f"{usage['bytes'] / (1024 * 1024):.2f} MB ({store.root})"
        )
        print(line)
        if usage["files"]:
            # Ages come off the store's clock, not a second ad-hoc
            # time source — tests drive the display with a ManualClock.
            now = store.clock.now()
            print(
                f"  oldest entry: {(now - usage['oldest_mtime']) / 3600.0:.2f} h, "
                f"newest entry: {(now - usage['newest_mtime']) / 3600.0:.2f} h"
            )

    if args.cache_command == "stats":
        _print_usage("cache: ")
        return 0
    if args.cache_command == "prune":
        if args.max_bytes is None and args.max_age is None:
            print(
                "error: prune requires --max-bytes and/or --max-age",
                file=sys.stderr,
            )
            return 2
        outcome = store.prune(max_bytes=args.max_bytes, max_age_seconds=args.max_age)
        print(
            f"pruned: {outcome['removed_files']} entries, "
            f"{outcome['removed_bytes'] / (1024 * 1024):.2f} MB removed; "
            f"{outcome['remaining_files']} entries, "
            f"{outcome['remaining_bytes'] / (1024 * 1024):.2f} MB remain"
        )
        return 0
    if args.cache_command == "clear":
        before = store.usage()
        store.clear()
        print(
            f"cleared: {before['files']} entries, "
            f"{before['bytes'] / (1024 * 1024):.2f} MB removed ({store.root})"
        )
        return 0
    raise ValueError(f"unknown cache command {args.cache_command!r}")  # pragma: no cover


def _run_server(server, args: argparse.Namespace, role: str) -> int:
    """Shared serve/cache-server run loop: port file, signals, drain.

    Blocks in the server's accept loop until SIGTERM/SIGINT (or a normal
    shutdown), drains gracefully, and exits 0 — the contract systemd,
    Kubernetes and the CI smoke rely on.  ``--port-file`` publishes the
    bound (possibly ephemeral) port for whoever started the process.
    """
    import signal
    import threading

    if args.port_file:
        Path(args.port_file).expanduser().write_text(
            f"{server.bound_port}\n", encoding="utf-8"
        )
    # The machine-checkable line scripts wait for (stdout, flushed).
    print(f"{role} listening on {server.url}", flush=True)

    def _drain(signum, _frame) -> None:
        LOGGER.info("%s: received signal %d, draining", role, signum)
        # shutdown() blocks until serve_forever() returns; it must run on
        # another thread because this handler interrupts that very loop.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - direct ^C fallback
        server.shutdown()
    print(f"{role} drained cleanly", flush=True)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the compile daemon until SIGTERM, then drain and exit 0."""
    from .serve import CompileDaemon

    daemon = CompileDaemon(
        cache_dir=args.cache_dir,
        remote_cache=args.remote_cache,
        workers=args.workers,
        solve_jobs=args.solve_jobs,
        queue_limit=args.queue_limit,
        wait_timeout=args.timeout,
        host=args.host,
        port=args.port,
    )
    return _run_server(daemon, args, "compile daemon")


def cmd_cache_server(args: argparse.Namespace) -> int:
    """Run the networked allocation-cache tier until SIGTERM."""
    from .serve import CacheServer

    server = CacheServer(
        args.cache_dir,
        host=args.host,
        port=args.port,
        max_bytes=args.max_bytes,
    )
    return _run_server(server, args, "cache server")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CMSwitch dual-mode CIM compiler (paper reproduction)"
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="status logging on stderr (-v progress, -vv debug); default is quiet",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="list registered models")
    models.set_defaults(func=cmd_models)

    hardware = sub.add_parser("hardware", help="show a hardware preset")
    hardware.add_argument("preset", choices=sorted(PRESETS))
    hardware.set_defaults(func=cmd_hardware)

    compile_cmd = sub.add_parser("compile", help="compile a model with CMSwitch")
    _add_workload_arguments(compile_cmd)
    compile_cmd.add_argument("--show-segments", action="store_true", help="print segment plans")
    compile_cmd.add_argument("--show-metaops", action="store_true", help="print the DMO flow")
    compile_cmd.set_defaults(func=cmd_compile)

    batch = sub.add_parser(
        "compile-batch",
        help="compile many models concurrently with a shared allocation cache",
    )
    batch.add_argument("models", nargs="*", help="registered model names (at least one)")
    batch.add_argument("--hardware", default="dynaplasia", choices=sorted(PRESETS))
    batch.add_argument("--batch", type=int, default=1, help="batch size")
    batch.add_argument("--seq-len", type=int, default=64, help="input sequence length")
    batch.add_argument("--output-len", type=int, default=64, help="generated tokens")
    batch.add_argument(
        "--phase",
        choices=[phase.value for phase in Phase],
        default=None,
        help="transformer phase (default: encode for transformers)",
    )
    batch.add_argument("--jobs", type=int, default=None, help="thread-pool width")
    batch.add_argument(
        "--solve-jobs",
        type=int,
        default=None,
        help=(
            "worker threads for window-allocation solves; one shared pool "
            "serves every job (strict mode: bit-identical programs and "
            "solve counts vs the sequential path)"
        ),
    )
    batch.add_argument(
        "--speculative",
        action="store_true",
        help=(
            "opt-in speculative DP lookahead on the solver pool (programs "
            "stay bit-identical; wasted solves are reported)"
        ),
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="compile the model list this many times (shows warm-cache speedups)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the shared allocation cache"
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="persistent allocation-cache directory (shared across runs and processes)",
    )
    batch.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="worker pool backend (process workers share solves via --cache-dir)",
    )
    batch.add_argument(
        "--remote-cache",
        default=None,
        metavar="URL",
        help="networked cache tier: URL of a running 'repro cache-server'",
    )
    batch.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the per-job statistics as a JSON report",
    )
    _add_obs_arguments(batch)
    batch.set_defaults(func=cmd_compile_batch)

    compare = sub.add_parser("compare", help="compare CMSwitch against the baselines")
    _add_workload_arguments(compare)
    compare.set_defaults(func=cmd_compare)

    experiment = sub.add_parser("experiment", help="run a paper-figure experiment")
    experiment.add_argument(
        "figure",
        choices=["fig14", "fig15", "fig16", "fig17", "fig18", "sec5.5", "serving"],
    )
    experiment.add_argument("--hardware", default="dynaplasia", choices=sorted(PRESETS))
    experiment.add_argument("--batch-sizes", type=int, nargs="+", default=[1])
    experiment.add_argument("--sequence-lengths", type=int, nargs="+", default=[32, 256])
    experiment.add_argument(
        "--cache-dir",
        default=None,
        help="persistent allocation-cache directory reused across experiment runs",
    )
    experiment.add_argument(
        "--presets",
        nargs="+",
        choices=sorted(PRESETS),
        default=["dynaplasia", "prime"],
        help="hardware presets the serving SLO sweep compares",
    )
    experiment.add_argument(
        "--requests",
        type=int,
        default=24,
        help="requests per synthetic trace (serving experiment)",
    )
    experiment.add_argument(
        "--seed", type=int, default=0, help="trace seed (serving experiment)"
    )
    experiment.set_defaults(func=cmd_experiment)

    dse = sub.add_parser(
        "dse",
        help="explore a hardware/allocation design space (cache-aware, resumable)",
    )
    dse.add_argument(
        "models",
        nargs="*",
        help="registered model names (default: tiny-cnn, a fast demo space)",
    )
    dse.add_argument(
        "--hardware",
        default="small-test-chip",
        choices=sorted(PRESETS),
        help="base hardware preset the axes override (default: small-test-chip)",
    )
    dse.add_argument(
        "--arrays",
        type=int,
        nargs="+",
        default=None,
        help="num_arrays axis values (default: half and full preset size)",
    )
    dse.add_argument(
        "--modes",
        nargs="+",
        choices=["dual", "fixed"],
        default=None,
        help="mode-split axis: dual (memory mode allowed) and/or fixed",
    )
    dse.add_argument("--batch", type=int, nargs="+", default=[1], help="batch-size axis")
    dse.add_argument(
        "--seq-len", type=int, nargs="+", default=[32], help="sequence-length axis"
    )
    dse.add_argument("--output-len", type=int, default=32, help="generated tokens")
    dse.add_argument(
        "--phase",
        choices=[phase.value for phase in Phase],
        default=None,
        help="transformer phase for every workload (default: prefill)",
    )
    dse.add_argument(
        "--strategy",
        choices=["grid", "random", "greedy", "successive-halving"],
        default="grid",
        help="search strategy (see docs/dse.md)",
    )
    dse.add_argument(
        "--fidelity",
        choices=["analytical", "greedy", "cached", "compile", "auto"],
        default="compile",
        help=(
            "evaluation tier: compile (full pipeline), analytical "
            "(closed-form lower bounds, zero solves), greedy (full "
            "pipeline with the heuristic allocator, zero MILP solves), "
            "cached (only what the store already knows), auto "
            "(successive-halving ladder analytical -> greedy -> "
            "compile; see docs/dse.md)"
        ),
    )
    dse.add_argument("--seed", type=int, default=0, help="RNG seed for random/greedy")
    dse.add_argument(
        "--budget",
        type=int,
        default=None,
        help="max design points to cover this run (default: the whole space)",
    )
    dse.add_argument(
        "--objective",
        choices=["latency", "energy", "trace-p99"],
        default="latency",
        help=(
            "what adaptive strategies minimise and reports highlight; "
            "trace-p99 replays --trace per candidate and minimises its "
            "p99 latency"
        ),
    )
    dse.add_argument(
        "--trace",
        default=None,
        help="request-trace file (JSONL) backing the trace-p99 objective",
    )
    dse.add_argument(
        "--cache-dir",
        default=None,
        help="persistent allocation-cache directory (enables warm-first planning)",
    )
    dse.add_argument(
        "--run-dir",
        default=None,
        help="resumable run directory (default: <cache-dir>/_dse, else ./dse-run)",
    )
    dse.add_argument(
        "--resume",
        action="store_true",
        help="continue the run directory, skipping already-evaluated points",
    )
    dse.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="compile-service backend",
    )
    dse.add_argument("--jobs", type=int, default=None, help="compile pool width")
    _add_obs_arguments(dse)
    dse.set_defaults(func=cmd_dse)

    replay = sub.add_parser(
        "replay",
        help="replay a request trace through the serving simulator",
    )
    replay.add_argument(
        "--preset",
        default="dynaplasia",
        choices=sorted(PRESETS),
        help="hardware preset the trace is served on",
    )
    replay.add_argument(
        "--trace",
        default=None,
        help="trace file (JSONL; see docs/simulator.md for the format)",
    )
    replay.add_argument(
        "--synthetic",
        choices=["poisson", "bursty", "diurnal"],
        default="poisson",
        help="synthetic generator used when --trace is not given",
    )
    replay.add_argument(
        "--models",
        nargs="+",
        default=None,
        help="traffic mix for synthetic traces (default: tiny-mlp tiny-cnn)",
    )
    replay.add_argument(
        "--requests", type=int, default=32, help="synthetic trace length"
    )
    replay.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="arrival rate in req/s (mean / base / peak by generator)",
    )
    replay.add_argument("--seed", type=int, default=0, help="trace generator seed")
    replay.add_argument(
        "--seq-lens",
        type=int,
        nargs="+",
        default=[32, 64],
        help="sequence-length buckets of synthetic traffic",
    )
    replay.add_argument(
        "--batch", type=int, default=1, help="batch size of synthetic requests"
    )
    replay.add_argument(
        "--cache-dir",
        default=None,
        help="persistent allocation-cache directory (warm replays solve nothing)",
    )
    replay.add_argument("--jobs", type=int, default=None, help="compile pool width")
    replay.add_argument(
        "--json-out", default=None, help="write the full JSON report here"
    )
    replay.add_argument(
        "--save-trace", default=None, help="also write the replayed trace here"
    )
    _add_obs_arguments(replay)
    replay.set_defaults(func=cmd_replay)

    cache = sub.add_parser(
        "cache", help="inspect and maintain a persistent allocation-cache directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="show entry count, size and age")
    cache_prune = cache_sub.add_parser(
        "prune", help="expire old entries (TTL) and/or shrink to a size budget"
    )
    cache_prune.add_argument(
        "--max-bytes",
        type=_parse_size,
        default=None,
        help="size budget, oldest entries evicted first (e.g. 64MB)",
    )
    cache_prune.add_argument(
        "--max-age",
        type=_parse_age,
        default=None,
        help="drop entries older than this (e.g. 7d, 12h, 3600)",
    )
    cache_clear = cache_sub.add_parser("clear", help="delete every cache entry")
    for cache_cmd in (cache_stats, cache_prune, cache_clear):
        cache_cmd.add_argument(
            "--cache-dir", required=True, help="allocation-cache directory"
        )
    cache.set_defaults(func=cmd_cache)

    def _add_server_arguments(server_parser: argparse.ArgumentParser) -> None:
        server_parser.add_argument(
            "--host", default="127.0.0.1", help="bind address (loopback by default)"
        )
        server_parser.add_argument(
            "--port",
            type=int,
            default=0,
            help="TCP port (default 0 = ephemeral; see --port-file)",
        )
        server_parser.add_argument(
            "--port-file",
            default=None,
            metavar="PATH",
            help="write the bound port here once listening (for scripts using --port 0)",
        )

    serve = sub.add_parser(
        "serve",
        help="run the compile daemon (coalescing HTTP compile-as-a-service)",
    )
    _add_server_arguments(serve)
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent allocation-cache directory behind the daemon's memory tier",
    )
    serve.add_argument(
        "--remote-cache",
        default=None,
        metavar="URL",
        help="networked cache tier: URL of a running 'repro cache-server'",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="compile worker threads"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="pending-request bound; beyond it requests get a structured 503",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request wait bound in seconds (504 on expiry)",
    )
    serve.add_argument(
        "--solve-jobs",
        type=int,
        default=None,
        help=(
            "worker threads for window-allocation solves, shared across "
            "all compile workers (one pool, bounded concurrency)"
        ),
    )
    serve.set_defaults(func=cmd_serve)

    cache_server = sub.add_parser(
        "cache-server",
        help="run the networked allocation-cache tier (content-addressed entries)",
    )
    _add_server_arguments(cache_server)
    cache_server.add_argument(
        "--cache-dir",
        required=True,
        help="directory the served entries live in (a DiskCacheStore)",
    )
    cache_server.add_argument(
        "--max-bytes",
        type=_parse_size,
        default=None,
        help="size budget for the served store (e.g. 256MB); oldest evicted first",
    )
    cache_server.set_defaults(func=cmd_cache_server)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
