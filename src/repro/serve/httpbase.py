"""Shared stdlib-only HTTP plumbing of the serving tier.

Both servers in this package — the compile daemon and the cache server
— are built on ``http.server.ThreadingHTTPServer`` (one thread per
connection, no third-party dependencies) with the same conventions:

* HTTP/1.1 with explicit ``Content-Length`` on every response, so
  clients can keep connections alive;
* JSON responses via :func:`respond_json`, structured errors via
  :func:`repro.serve.wire.error_payload`;
* request bodies are size-bounded (:func:`read_body`) — an oversized or
  length-less request is refused before any work happens;
* access logging goes to the ``repro`` logger at DEBUG (the CLI's
  ``-vv``), never to stderr on its own.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

__all__ = [
    "QuietHandler",
    "ServingHTTPServer",
    "read_body",
    "respond_json",
    "respond_text",
]

LOGGER = logging.getLogger("repro")

#: Request bodies above this are refused with 413 (a compile job — even
#: a large serialised graph — is far below it; this is a safety bound,
#: not a tuning knob).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server preconfigured for the serving tier.

    ``daemon_threads`` so a shutdown never hangs on a stuck connection
    thread; ``allow_reuse_address`` so restarts do not trip over
    TIME_WAIT sockets.
    """

    daemon_threads = True
    allow_reuse_address = True

    @property
    def bound_port(self) -> int:
        """The actual port (meaningful after binding with port 0)."""
        return self.server_address[1]


class QuietHandler(BaseHTTPRequestHandler):
    """Request handler base: HTTP/1.1, logging routed to the repro logger."""

    protocol_version = "HTTP/1.1"
    #: Overridden by servers to show up in the Server response header.
    server_version = "repro-serve"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        LOGGER.debug("%s - %s", self.address_string(), format % args)

    def log_error(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        LOGGER.debug("%s - error - %s", self.address_string(), format % args)


def respond_json(handler: BaseHTTPRequestHandler, status: int, payload) -> None:
    """Send ``payload`` as a JSON response with an exact Content-Length."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    handler.send_response(status)
    handler.send_header("Content-Type", "application/json")
    handler.send_header("Content-Length", str(len(body)))
    handler.end_headers()
    try:
        handler.wfile.write(body)
    except (BrokenPipeError, ConnectionResetError):
        pass  # the client hung up; nothing to clean up server-side


def respond_text(
    handler: BaseHTTPRequestHandler,
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
) -> None:
    """Send a plain-text response (the ``/metrics`` endpoints use this)."""
    body = text.encode("utf-8")
    handler.send_response(status)
    handler.send_header("Content-Type", content_type)
    handler.send_header("Content-Length", str(len(body)))
    handler.end_headers()
    try:
        handler.wfile.write(body)
    except (BrokenPipeError, ConnectionResetError):
        pass


def read_body(
    handler: BaseHTTPRequestHandler, max_bytes: int = MAX_BODY_BYTES
) -> Tuple[Optional[bytes], Optional[Tuple[int, str]]]:
    """Read the request body, enforcing presence and size of Content-Length.

    Returns:
        ``(body, None)`` on success, ``(None, (status, message))`` when
        the request must be refused (411 without a length, 413 over the
        bound, 400 on a short read).
    """
    length_header = handler.headers.get("Content-Length")
    if length_header is None:
        return None, (411, "Content-Length is required")
    try:
        length = int(length_header)
    except ValueError:
        return None, (400, f"invalid Content-Length {length_header!r}")
    if length < 0:
        return None, (400, f"invalid Content-Length {length}")
    if length > max_bytes:
        return None, (413, f"request body of {length} bytes exceeds {max_bytes}")
    body = handler.rfile.read(length)
    if len(body) != length:
        return None, (400, "request body shorter than Content-Length")
    return body, None
