"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_models_command_parses(self):
        args = build_parser().parse_args(["models"])
        assert args.command == "models"

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "tiny-cnn"])
        assert args.model == "tiny-cnn"
        assert args.hardware == "dynaplasia"
        assert args.batch == 1

    def test_compare_workload_arguments(self):
        args = build_parser().parse_args(
            ["compare", "bert", "--batch", "4", "--seq-len", "128", "--phase", "encode"]
        )
        assert args.batch == 4 and args.seq_len == 128 and args.phase == "encode"

    def test_experiment_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_models_lists_registry(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out and "llama2-7b" in out

    def test_hardware_summary(self, capsys):
        assert main(["hardware", "dynaplasia"]) == 0
        out = capsys.readouterr().out
        assert "arrays" in out and "320x320" in out

    def test_compile_small_model(self, capsys):
        code = main(
            [
                "compile",
                "tiny-cnn",
                "--hardware",
                "small-test-chip",
                "--show-segments",
                "--show-metaops",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cmswitch program" in out
        assert "segment 0" in out
        assert "parallel {" in out

    def test_compare_small_model(self, capsys):
        assert main(["compare", "tiny-transformer", "--hardware", "small-test-chip",
                     "--seq-len", "16"]) == 0
        out = capsys.readouterr().out
        assert "cmswitch" in out and "cim-mlc" in out and "x" in out

    def test_unknown_model_exits_2_with_available_names(self, capsys):
        # Unified unknown-name handling: exit code 2 and the registered
        # model list on stderr, never a raw KeyError traceback.
        code = main(["compile", "not-a-model", "--hardware", "small-test-chip"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown model name(s): not-a-model" in err
        assert "available models:" in err and "tiny-mlp" in err
