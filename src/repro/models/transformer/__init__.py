"""Transformer model zoo (BERT, GPT-2, LLaMA 2, OPT)."""

from .bert import BERT_BASE, BERT_LARGE, build_bert_base, build_bert_large
from .common import TransformerConfig, add_transformer_block, build_transformer_graph
from .gpt import GPT2_SMALL, GPT2_XL, build_gpt2, build_gpt2_xl
from .llama import LLAMA2_7B, LLAMA2_13B, build_llama2_7b, build_llama2_13b
from .opt import OPT_1_3B, OPT_6_7B, OPT_13B, build_opt_1_3b, build_opt_6_7b, build_opt_13b

__all__ = [
    "BERT_BASE",
    "BERT_LARGE",
    "GPT2_SMALL",
    "GPT2_XL",
    "LLAMA2_7B",
    "LLAMA2_13B",
    "OPT_1_3B",
    "OPT_6_7B",
    "OPT_13B",
    "TransformerConfig",
    "add_transformer_block",
    "build_bert_base",
    "build_bert_large",
    "build_gpt2",
    "build_gpt2_xl",
    "build_llama2_7b",
    "build_llama2_13b",
    "build_opt_1_3b",
    "build_opt_6_7b",
    "build_opt_13b",
    "build_transformer_graph",
]
