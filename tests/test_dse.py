"""Tests for the cache-aware design-space-exploration engine (repro.dse)."""

import json
import math

import pytest

from repro.core import AllocationCache, DiskCacheStore
from repro.dse import (
    DesignSpace,
    DSERunner,
    EvaluationRecord,
    GreedyStrategy,
    GridStrategy,
    Planner,
    RandomStrategy,
    RunState,
    RunStateError,
    make_strategy,
    pareto_frontier,
    run_dse,
    write_csv,
)
from repro.hardware import small_test_chip
from repro.models import Workload, build_model


def tiny_space(arrays=(4, 8), modes=None, models=("tiny-cnn",)):
    """A fast space over the 8-array test chip."""
    option_axes = {}
    if modes is not None:
        option_axes["allow_memory_mode"] = list(modes)
    return DesignSpace(
        models=list(models),
        base_hardware=small_test_chip(),
        workloads=[Workload(batch_size=1, seq_len=16)],
        hardware_axes={"num_arrays": list(arrays)},
        option_axes=option_axes,
    )


# ---------------------------------------------------------------------- #
# DesignSpace
# ---------------------------------------------------------------------- #
class TestDesignSpace:
    def test_size_and_grid_order(self):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        assert space.size == 6
        points = list(space.points())
        assert len(points) == 6
        # Lexicographic: mode varies fastest (last axis).
        assert [p.hardware.num_arrays for p in points] == [4, 4, 6, 6, 8, 8]
        assert [p.options.allow_memory_mode for p in points] == [True, False] * 3

    def test_point_keys_stable_and_distinct(self):
        space = tiny_space(arrays=(4, 8))
        keys = [p.key for p in space.points()]
        assert len(set(keys)) == 2
        # Same declaration -> same keys (cross-process stability proxy).
        again = [p.key for p in tiny_space(arrays=(4, 8)).points()]
        assert keys == again

    def test_empty_models_rejected(self):
        with pytest.raises(ValueError, match="at least one model"):
            DesignSpace(models=[])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            tiny_space(arrays=())

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown hardware axis"):
            DesignSpace(models=["tiny-cnn"], hardware_axes={"warp_cores": [1]})
        with pytest.raises(ValueError, match="unknown option axis"):
            DesignSpace(models=["tiny-cnn"], option_axes={"turbo": [True]})

    def test_neighbors_step_one_axis(self):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        coords = (0, 0, 1, 0)
        neighbors = space.neighbors(coords)
        assert (0, 0, 0, 0) in neighbors and (0, 0, 2, 0) in neighbors
        assert (0, 0, 1, 1) in neighbors
        for nb in neighbors:
            assert sum(a != b for a, b in zip(nb, coords)) == 1

    def test_spec_round_trip(self):
        space = tiny_space(arrays=(4, 8), modes=(True, False))
        rebuilt = DesignSpace.from_spec(space.to_spec())
        assert rebuilt.fingerprint() == space.fingerprint()
        assert [p.key for p in rebuilt.points()] == [p.key for p in space.points()]

    def test_numpy_axis_values_are_coerced(self):
        import numpy as np

        space = DesignSpace(
            models=["tiny-mlp"],
            base_hardware=small_test_chip(),
            hardware_axes={"num_arrays": np.array([4, 8])},
            option_axes={"allow_memory_mode": np.array([True])},
        )
        # int64/bool_ values must not crash JSON digests three calls later.
        assert space.fingerprint()
        points = list(space.points())
        assert [p.key for p in points]
        assert all(isinstance(p.hardware.num_arrays, int) for p in points)
        json.dumps(space.to_spec())

    def test_graph_models_get_structural_digests(self):
        graph = build_model("tiny-mlp", Workload(batch_size=1))
        space = DesignSpace(models=[graph], base_hardware=small_test_chip())
        point = next(space.points())
        assert point.model_digest is not None
        assert point.model_name == "tiny-mlp"


# ---------------------------------------------------------------------- #
# Planner
# ---------------------------------------------------------------------- #
class TestPlanner:
    def test_structural_duplicates_collapse(self):
        # The same model twice -> identical structure -> one canonical job.
        space = tiny_space(models=("tiny-cnn", "tiny-cnn"))
        planner = Planner()
        plan = planner.plan(list(space.points()))
        assert plan.n_points == 4
        assert len(plan.jobs) == 2  # one per array count
        assert plan.n_collapsed == 2
        for job in plan.jobs:
            assert len(job.duplicates) == 1

    def test_distinct_structures_not_collapsed(self):
        space = tiny_space(models=("tiny-cnn", "tiny-mlp"), arrays=(8,))
        plan = Planner().plan(list(space.points()))
        assert len(plan.jobs) == 2
        assert plan.n_collapsed == 0

    def test_warm_points_ordered_first(self, tmp_path):
        cache_dir = tmp_path / "cache"
        # Warm exactly one design point (8 arrays) through a real compile.
        warm_only = tiny_space(arrays=(8,))
        run_dse(warm_only, cache_dir=cache_dir)
        store = DiskCacheStore(cache_dir)
        planner = Planner(store=store)
        # Plan cold-first input order; the warm point must come out first.
        space = tiny_space(arrays=(4, 8))
        points = list(space.points())  # 4 (cold) then 8 (warm)
        plan = planner.plan(points)
        assert plan.n_warm == 1 and plan.n_cold == 1
        assert plan.jobs[0].point.hardware.num_arrays == 8
        assert plan.jobs[0].warm and not plan.jobs[1].warm

    def test_no_store_means_everything_cold(self):
        plan = Planner().plan(list(tiny_space().points()))
        assert plan.n_warm == 0
        assert all(not job.warm for job in plan.jobs)


# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
class TestStrategies:
    def _drain(self, strategy, space, chunk=3):
        strategy.bind(space)
        seen = []
        while not strategy.exhausted:
            batch = strategy.ask(chunk)
            if not batch:
                break
            seen.extend(batch)
        return seen

    def test_grid_proposes_lexicographic_order(self):
        space = tiny_space(arrays=(4, 6, 8))
        points = self._drain(GridStrategy(), space)
        assert [p.coords for p in points] == list(space.coordinates())

    def test_random_is_seeded_and_complete(self):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        first = [p.coords for p in self._drain(RandomStrategy(seed=7), space)]
        second = [p.coords for p in self._drain(RandomStrategy(seed=7), space)]
        other = [p.coords for p in self._drain(RandomStrategy(seed=8), space)]
        assert first == second
        assert sorted(first) == sorted(space.coordinates())
        assert first != other  # 12 points: astronomically unlikely to coincide

    def test_greedy_explores_neighbors_of_best(self):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        strategy = GreedyStrategy(seed=0)
        strategy.bind(space)
        batch = strategy.ask(2)
        assert len(batch) == 2
        # Feed back: first point is great, second terrible.
        records = [
            EvaluationRecord(
                point_key=p.key, model=p.model_name, workload="w", hardware="h",
                num_arrays=p.hardware.num_arrays, hardware_fingerprint="f",
                coords=p.coords, allow_memory_mode=True, objective="latency",
                feasible=True, objective_value=value,
            )
            for p, value in zip(batch, (1.0, 100.0))
        ]
        strategy.tell(records)
        best_coords = batch[0].coords
        next_batch = strategy.ask(2)
        neighbor_set = set(space.neighbors(best_coords))
        assert next_batch, "greedy must keep proposing"
        assert next_batch[0].coords in neighbor_set

    def test_greedy_exhausts_whole_space(self):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        points = self._drain(GreedyStrategy(seed=1), space)
        assert sorted(p.coords for p in points) == sorted(space.coordinates())

    def test_make_strategy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("simulated-annealing")


# ---------------------------------------------------------------------- #
# Runner + resume
# ---------------------------------------------------------------------- #
class TestRunnerResume:
    def test_budget_limits_coverage(self, tmp_path):
        space = tiny_space(arrays=(4, 6, 8))
        result = run_dse(space, budget=2, cache_dir=tmp_path / "cache")
        assert result.evaluated + result.replicated == 2

    def test_resume_after_interrupt_skips_completed(self, tmp_path):
        space = tiny_space(arrays=(4, 6, 8))
        cache_dir = tmp_path / "cache"
        run_dir = tmp_path / "run"

        # "Interrupted" first run: budget covers 2 of 3 points.
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            partial = DSERunner(space, cache_dir=cache_dir, state=state).run(budget=2)
        assert partial.evaluated == 2

        # Restart with the full budget: the 2 completed points are skipped,
        # only the third is compiled.
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            resumed = DSERunner(space, cache_dir=cache_dir, state=state).run()
        assert resumed.skipped == 2
        assert resumed.evaluated == 1
        assert len(resumed.records) == 3

        # A third run does nothing at all: zero solves, everything skipped.
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            final = DSERunner(space, cache_dir=cache_dir, state=state).run()
        assert final.skipped == 3
        assert final.evaluated == 0
        assert final.allocator_solves == 0

    def test_fresh_run_refuses_existing_results(self, tmp_path):
        space = tiny_space()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, state=state).run()
        with pytest.raises(RunStateError, match="already contains results"):
            RunState.open(
                tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
            )

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        space = tiny_space()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, state=state).run()
        results = tmp_path / "results.jsonl"
        lines = results.read_text().splitlines()
        assert len(lines) == 2
        # Simulate a crash mid-append: truncate the last record.
        results.write_text("\n".join(lines[:1]) + "\n" + lines[1][: len(lines[1]) // 2])
        state = RunState.load(tmp_path)
        assert state.dropped_lines == 1
        assert len(state.completed) == 1
        # The torn point is re-evaluated on resume.
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as resumed_state:
            resumed = DSERunner(space, state=resumed_state).run()
        assert resumed.skipped == 1 and resumed.evaluated == 1

    def test_resume_with_widened_space_evaluates_only_new_points(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_dir = tmp_path / "run"
        narrow = tiny_space(arrays=(4, 8))
        with RunState.open(
            run_dir, narrow.to_spec(), narrow.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(narrow, cache_dir=cache_dir, state=state).run()
        wide = tiny_space(arrays=(4, 6, 8))
        with RunState.open(
            run_dir, wide.to_spec(), wide.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            assert state.space_changed
            result = DSERunner(wide, cache_dir=cache_dir, state=state).run()
        assert result.skipped == 2 and result.evaluated == 1
        assert {r.num_arrays for r in result.records} == {4, 6, 8}
        # Coordinates recorded under the old (narrower) space index a
        # different grid; resumed records must not carry them into the
        # new space's strategies.
        for record in result.records:
            if record.status == "resumed":
                assert record.coords == ()

        # A further resume of the *same* widened space is no longer a
        # space change, and the point evaluated under it keeps its
        # coordinates (records carry their own space fingerprints).
        with RunState.open(
            run_dir, wide.to_spec(), wide.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            assert not state.space_changed
            final = DSERunner(wide, cache_dir=cache_dir, state=state).run()
        assert final.skipped == 3 and final.evaluated == 0
        by_arrays = {r.num_arrays: r for r in final.records}
        assert by_arrays[6].coords != ()   # evaluated under the wide space
        assert by_arrays[4].coords == ()   # evaluated under the narrow one

    def test_resume_with_different_objective_rescores_records(self, tmp_path):
        space = tiny_space()
        run_dir = tmp_path / "run"
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "energy", "grid"
        ) as state:
            DSERunner(space, objective="energy", state=state).run()
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            result = DSERunner(space, objective="latency", state=state).run()
        assert result.skipped == 2
        for record in result.records:
            assert record.objective == "latency"
            assert record.objective_value == pytest.approx(record.latency_ms)

    def test_resume_retries_failed_points(self, tmp_path):
        # A genuine failure (unknown model) must be retried on resume,
        # not permanently skipped as "already evaluated".
        space = DesignSpace(
            models=["no-such-model", "tiny-mlp"], base_hardware=small_test_chip()
        )
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            first = DSERunner(space, state=state).run()
        assert sum(1 for r in first.new_records if r.failed) == 1
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            resumed = DSERunner(space, state=state).run()
        # tiny-mlp is final and skipped; the failed point is re-attempted.
        assert resumed.skipped == 1
        assert resumed.evaluated == 1
        assert sum(1 for r in resumed.new_records if r.failed) == 1

    def test_resume_with_new_objective_updates_run_metadata(self, tmp_path):
        space = tiny_space()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, objective="latency", state=state).run()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "energy", "greedy",
            resume=True,
        ) as state:
            assert state.meta["objective"] == "energy"
            assert state.meta["strategy"] == "greedy"
        # The rewrite is durable, not just in-memory.
        assert json.loads((tmp_path / "space.json").read_text())["objective"] == "energy"

    def test_unreadable_results_raise_run_state_error(self, tmp_path):
        space = tiny_space()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, state=state).run()
        results = tmp_path / "results.jsonl"
        results.unlink()
        results.mkdir()  # open() for reading now fails with an OSError
        with pytest.raises(RunStateError, match="cannot read"):
            RunState.load(tmp_path)

    def test_resume_recovers_from_missing_space_json(self, tmp_path):
        space = tiny_space()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, state=state).run()
        (tmp_path / "space.json").unlink()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            assert state.space_changed  # original declaration unknown
            assert state.meta.get("recovered") is True
            result = DSERunner(space, state=state).run()
        assert result.skipped == 2 and result.evaluated == 0

    def test_resume_recovers_from_torn_space_json(self, tmp_path):
        # A power loss can tear space.json while the fsynced results
        # survive; --resume must recover, not dead-end.
        space = tiny_space()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, state=state).run()
        (tmp_path / "space.json").write_text('{"format_version": 1, "spa')
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            assert state.meta.get("recovered") is True
            result = DSERunner(space, state=state).run()
        assert result.skipped == 2 and result.evaluated == 0

    def test_resume_refuses_newer_state_format(self, tmp_path):
        # A parseable space.json from a newer writer must be refused,
        # never clobbered by the torn-file recovery path.
        space = tiny_space()
        with RunState.open(
            tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, state=state).run()
        meta = json.loads((tmp_path / "space.json").read_text())
        meta["format_version"] = 999
        (tmp_path / "space.json").write_text(json.dumps(meta))
        with pytest.raises(RunStateError, match="format"):
            RunState.open(
                tmp_path, space.to_spec(), space.fingerprint(), "latency", "grid",
                resume=True,
            )

    def test_fixed_pass_infeasibility_keeps_dual_plan_and_solves(
        self, small_chip, monkeypatch
    ):
        # If the fixed-mode fallback pass proves itself infeasible, the
        # dual-mode plan must survive and the fallback's solver work must
        # still be counted.
        import repro.pipeline.passes as passes_module
        from repro.core.compiler import CMSwitchCompiler, CompilerOptions
        from repro.core.segmentation import NetworkSegmenter, NoFeasiblePlanError
        from repro.models import build_model

        real_segmenter = NetworkSegmenter

        class FixedPassFails(real_segmenter):
            def segment(self, graph, units=None):
                if not self.options.allow_memory_mode:
                    raise NoFeasiblePlanError(
                        "fixed impossible",
                        stats={
                            "allocator_solves": 7,
                            "allocation_cache_hits": 3,
                            "allocation_disk_hits": 1,
                        },
                    )
                return super().segment(graph, units=units)

        monkeypatch.setattr(passes_module, "NetworkSegmenter", FixedPassFails)
        graph = build_model("tiny-mlp", Workload(batch_size=1))
        program = CMSwitchCompiler(
            small_chip, CompilerOptions(generate_code=False)
        ).compile(graph)
        assert program.num_segments >= 1
        assert program.stats["allocator_solves"] >= 7
        assert program.stats["allocation_cache_hits"] >= 3
        assert program.stats["allocation_disk_hits"] >= 1

    def test_infeasible_compile_still_reports_its_solves(self, small_chip, monkeypatch):
        # Force both passes infeasible while preserving the solve counters:
        # the work done before NoFeasiblePlanError must not vanish from
        # batch/DSE accounting.
        import repro.pipeline.passes as passes_module
        from repro.core.segmentation import SegmentationResult

        def _infeasible_result():
            from repro.cost.latency import INFEASIBLE_LATENCY
            from repro.core.program import SegmentPlan

            plan = SegmentPlan(
                index=0, operator_names=["op"], allocations={}, profiles={},
                intra_cycles=INFEASIBLE_LATENCY, inter_cycles=0.0,
            )
            return SegmentationResult([plan], [], 0.0, 5, 3, 2)

        class InfeasibleSegmenter:
            def __init__(self, *args, **kwargs):
                self.allocation_calls = 5
                self.cache_hits = 3
                self.disk_hits = 2

            def choose_boundaries(self, graph, units):
                return [(0, 0)]

            def build_plans(self, units, boundaries):
                return _infeasible_result().segments

            def segment(self, graph, units=None):
                return _infeasible_result()

        monkeypatch.setattr(passes_module, "NetworkSegmenter", InfeasibleSegmenter)
        result = run_dse(tiny_space(arrays=(8,)))
        record = result.records[0]
        assert not record.feasible and not record.failed
        assert record.allocator_solves == 10  # both passes' 5 solves each
        assert record.disk_hits == 4
        assert result.allocator_solves == 10

    def test_shared_cache_object_instead_of_dir(self):
        cache = AllocationCache()
        result = run_dse(tiny_space(), cache=cache)
        assert result.evaluated == 2
        assert cache.stats.stores > 0

    def test_failing_point_is_recorded_not_fatal(self):
        # An unknown model cannot even be planned; its failure must land
        # in its own record while the valid point still compiles.
        space = DesignSpace(
            models=["no-such-model", "tiny-cnn"],
            base_hardware=small_test_chip(),
            workloads=[Workload(batch_size=1, seq_len=16)],
        )
        result = run_dse(space)
        assert result.evaluated == 2
        by_model = {r.model: r for r in result.records}
        failed = by_model["no-such-model"]
        assert not failed.feasible
        assert failed.failed
        assert failed.error and "no-such-model" in failed.error
        assert math.isinf(failed.objective_value)
        assert by_model["tiny-cnn"].feasible

    def test_failed_record_serialises_as_strict_json(self):
        # Non-finite metrics must become null, never a bare Infinity
        # token (results.jsonl is consumed by jq/pandas too).
        space = DesignSpace(models=["no-such-model"], base_hardware=small_test_chip())
        result = run_dse(space)
        payload = result.records[0].to_dict()
        text = json.dumps(payload, allow_nan=False)  # raises on inf/nan
        clone = EvaluationRecord.from_dict(json.loads(text))
        assert math.isinf(clone.objective_value) and clone.failed

    def test_records_json_round_trip(self):
        result = run_dse(tiny_space())
        for record in result.records:
            clone = EvaluationRecord.from_dict(json.loads(json.dumps(record.to_dict())))
            assert clone.point_key == record.point_key
            assert clone.coords == record.coords
            assert clone.latency_ms == pytest.approx(record.latency_ms)


# ---------------------------------------------------------------------- #
# Warm planning across runs
# ---------------------------------------------------------------------- #
class TestWarmPlanning:
    def test_second_run_of_overlapping_space_does_zero_solves(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_dse(tiny_space(), cache_dir=cache_dir)
        assert cold.allocator_solves > 0
        warm = run_dse(tiny_space(), cache_dir=cache_dir)
        assert warm.allocator_solves == 0
        assert warm.cold_planned == 0
        assert warm.disk_hits > 0
        # Same designs, bit-identical metrics.
        cold_by_key = {r.point_key: r for r in cold.records}
        for record in warm.records:
            assert record.latency_ms == cold_by_key[record.point_key].latency_ms

    def test_disk_hits_surface_in_program_stats(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_dse(tiny_space(arrays=(8,)), cache_dir=cache_dir)
        warm = run_dse(tiny_space(arrays=(8,)), cache_dir=cache_dir)
        record = warm.records[0]
        assert record.disk_hits > 0
        assert record.allocator_solves == 0


# ---------------------------------------------------------------------- #
# Pareto
# ---------------------------------------------------------------------- #
def _record(key, latency, energy, arrays, feasible=True):
    return EvaluationRecord(
        point_key=key, model="m", workload="w", hardware="h", num_arrays=arrays,
        hardware_fingerprint="f", coords=(0,), allow_memory_mode=True,
        objective="latency", feasible=feasible, latency_ms=latency,
        energy_mj=energy, objective_value=latency,
    )


class TestPareto:
    def test_known_frontier(self):
        records = [
            _record("a", 10.0, 5.0, 8),    # frontier (fastest)
            _record("b", 20.0, 3.0, 8),    # frontier (least energy at 8)
            _record("c", 30.0, 6.0, 8),    # dominated by a and b
            _record("d", 40.0, 8.0, 4),    # frontier (fewest arrays)
            _record("e", 12.0, 5.0, 8),    # dominated by a
        ]
        frontier = {r.point_key for r in pareto_frontier(records)}
        assert frontier == {"a", "b", "d"}

    def test_infeasible_and_nonfinite_excluded(self):
        records = [
            _record("a", 10.0, 5.0, 8),
            _record("x", math.inf, math.inf, 8, feasible=False),
            _record("y", math.inf, 5.0, 4),
        ]
        frontier = {r.point_key for r in pareto_frontier(records)}
        assert frontier == {"a"}

    def test_identical_points_both_kept(self):
        records = [_record("a", 10.0, 5.0, 8), _record("b", 10.0, 5.0, 8)]
        assert len(pareto_frontier(records)) == 2

    def test_csv_written_with_pareto_flags(self, tmp_path):
        records = [_record("a", 10.0, 5.0, 8), _record("c", 30.0, 6.0, 8)]
        path = write_csv(tmp_path / "out.csv", records)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("point_key,") and lines[0].endswith(",pareto")
        flags = {line.split(",")[0]: line.split(",")[-1] for line in lines[1:]}
        assert flags == {"a": "1", "c": "0"}


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestDseCli:
    def test_dse_run_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        argv = ["dse", "--strategy", "grid", "--budget", "4", "--cache-dir", cache_dir]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "pareto frontier" in out
        assert "total allocator solves: 0" not in out
        assert (tmp_path / "cache" / "_dse" / "pareto.csv").exists()
        assert (tmp_path / "cache" / "_dse" / "report.txt").exists()

        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "total allocator solves: 0" in out
        assert "2 skipped (already evaluated)" in out

    def test_dse_refuses_dirty_run_dir_without_resume(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        argv = ["dse", "--budget", "2", "--cache-dir", cache_dir]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "already contains results" in capsys.readouterr().err

    def test_dse_strategy_and_objective_choices(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["dse", "tiny-mlp", "--strategy", "greedy", "--objective", "energy",
             "--arrays", "4", "8", "--modes", "dual", "fixed"]
        )
        assert args.strategy == "greedy" and args.objective == "energy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dse", "--strategy", "annealing"])


class TestCacheCli:
    def _warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_dse(tiny_space(), cache_dir=cache_dir)
        return cache_dir

    def test_stats(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = self._warm_cache(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "oldest entry" in out

    def test_stats_on_missing_directory_reports_empty_and_exits_zero(
        self, tmp_path, capsys
    ):
        # A cache dir that was never created holds nothing: `stats` is a
        # read-only query and must answer "empty" (exit 0) without
        # creating the directory — scripts can poll a cache dir before
        # its first run without special-casing an error.
        from repro.cli import main

        missing = tmp_path / "typo-path"
        assert main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out and "0.00 MB" in out
        assert not missing.exists()

    def test_prune_and_clear_still_reject_missing_directory(self, tmp_path, capsys):
        from repro.cli import main

        missing = tmp_path / "typo-path"
        assert (
            main(
                ["cache", "prune", "--cache-dir", str(missing), "--max-bytes", "1MB"]
            )
            == 2
        )
        assert "does not exist" in capsys.readouterr().err
        assert main(["cache", "clear", "--cache-dir", str(missing)]) == 2
        assert not missing.exists()

    def test_cache_cli_rejects_regular_file_path(self, tmp_path, capsys):
        from repro.cli import main

        not_a_dir = tmp_path / "somefile"
        not_a_dir.write_text("hi")
        assert main(["cache", "stats", "--cache-dir", str(not_a_dir)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_prune_by_age(self, tmp_path, capsys):
        import os
        import time

        from repro.cli import main

        cache_dir = self._warm_cache(tmp_path)
        store = DiskCacheStore(cache_dir)
        entries = store._entry_files()
        assert entries
        # Age half the entries far into the past.
        old = time.time() - 10 * 86400
        aged = entries[: len(entries) // 2]
        for path in aged:
            os.utime(path, (old, old))
        assert main(["cache", "prune", "--cache-dir", str(cache_dir), "--max-age", "7d"]) == 0
        assert f"pruned: {len(aged)} entries" in capsys.readouterr().out
        assert len(store._entry_files()) == len(entries) - len(aged)

    def test_prune_by_size_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = self._warm_cache(tmp_path)
        store = DiskCacheStore(cache_dir)
        before = len(store)
        assert main(["cache", "prune", "--cache-dir", str(cache_dir), "--max-bytes", "2KB"]) == 0
        remaining = len(store)
        assert remaining < before
        assert store.usage()["bytes"] <= 2048
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert len(store) == 0

    def test_prune_requires_a_policy(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = self._warm_cache(tmp_path)
        assert main(["cache", "prune", "--cache-dir", str(cache_dir)]) == 2
        assert "requires" in capsys.readouterr().err

    def test_prune_spares_foreign_files(self, tmp_path):
        from repro.cli import main

        cache_dir = self._warm_cache(tmp_path)
        # The DSE run dir nested inside the cache dir must survive both
        # prune and clear (only content-addressed entry files are touched).
        foreign = cache_dir / "_dse"
        foreign.mkdir()
        (foreign / "space.json").write_text("{}")
        assert main(["cache", "prune", "--cache-dir", str(cache_dir), "--max-bytes", "0"]) == 0
        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert (foreign / "space.json").exists()


# ---------------------------------------------------------------------- #
# Multi-fidelity evaluation (repro.eval threading)
# ---------------------------------------------------------------------- #
class TestFidelity:
    def test_analytical_run_performs_zero_solves(self):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        result = DSERunner(space, fidelity="analytical").run()
        assert result.allocator_solves == 0
        assert result.evaluated_by_fidelity == {"analytical": space.size}
        assert all(r.fidelity == "analytical" for r in result.new_records)
        assert all(r.lower_bound for r in result.new_records)
        assert all(r.feasible for r in result.new_records)

    def test_analytical_metrics_lower_bound_compiled_metrics(self):
        space = tiny_space(arrays=(4, 8), modes=(True, False))
        bounds = {
            r.point_key: r for r in DSERunner(space, fidelity="analytical").run().records
        }
        exact = {
            r.point_key: r for r in DSERunner(space, fidelity="compile").run().records
        }
        assert set(bounds) == set(exact)
        for key, bound in bounds.items():
            record = exact[key]
            assert bound.feasible == record.feasible
            if record.feasible:
                assert bound.latency_ms <= record.latency_ms * (1 + 1e-9)
                assert bound.energy_mj <= record.energy_mj * (1 + 1e-9)

    def test_auto_promotes_survivors_up_the_ladder(self):
        from repro.dse import SuccessiveHalvingStrategy

        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        strategy = SuccessiveHalvingStrategy(seed=0, keep_fraction=0.5)
        result = DSERunner(space, strategy=strategy, fidelity="auto").run()
        assert result.evaluated_by_fidelity["analytical"] == space.size
        climbed = result.evaluated_by_fidelity["greedy"]
        promoted = result.evaluated_by_fidelity["compile"]
        assert climbed == math.ceil(space.size * 0.5)
        assert promoted == math.ceil(climbed * 0.5)
        # Rung 0 is free: analytical evaluations perform no solves.
        rung0 = [r for r in result.new_records if r.fidelity == "analytical"]
        assert sum(r.allocator_solves for r in rung0) == 0
        # Final records carry one entry per point, at the highest
        # fidelity each point was paid for.
        by_key = {r.point_key: r for r in result.records}
        assert len(by_key) == space.size
        assert sum(1 for r in by_key.values() if r.fidelity == "compile") == promoted
        assert (
            sum(1 for r in by_key.values() if r.fidelity == "greedy")
            == climbed - promoted
        )

    def test_auto_installs_successive_halving_for_plain_strategies(self):
        from repro.dse import SuccessiveHalvingStrategy

        runner = DSERunner(tiny_space(), strategy="grid", fidelity="auto")
        assert isinstance(runner.strategy, SuccessiveHalvingStrategy)

    def test_auto_resume_skips_every_rung(self, tmp_path):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        run_dir = tmp_path / "run"
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "successive-halving"
        ) as state:
            first = DSERunner(space, fidelity="auto", state=state).run()
        assert first.evaluated > 0
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency",
            "successive-halving", resume=True,
        ) as state:
            second = DSERunner(space, fidelity="auto", state=state).run()
        # Every rung is answered by the stored records (each point's
        # stored fidelity is at least the rung it reached last time, and
        # the seeded ladder re-promotes the same survivors) — so nothing
        # is evaluated and nothing is solved.
        assert second.evaluated == 0
        assert second.allocator_solves == 0

    def test_compile_record_satisfies_analytical_request_on_resume(self, tmp_path):
        space = tiny_space(arrays=(4, 8))
        run_dir = tmp_path / "run"
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, fidelity="compile", state=state).run()
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            result = DSERunner(space, fidelity="analytical", state=state).run()
        assert result.evaluated == 0
        assert result.skipped == space.size

    def test_analytical_record_does_not_satisfy_compile_request(self, tmp_path):
        space = tiny_space(arrays=(4, 8))
        run_dir = tmp_path / "run"
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, fidelity="analytical", state=state).run()
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            result = DSERunner(space, fidelity="compile", state=state).run()
        assert result.evaluated == space.size
        assert result.skipped == 0
        assert all(r.fidelity == "compile" for r in result.new_records)

    def test_cached_fidelity_declines_cold_and_answers_warm(self, tmp_path):
        space = tiny_space(arrays=(4, 8))
        cache_dir = tmp_path / "cache"
        cold = DSERunner(space, fidelity="cached", cache_dir=cache_dir).run()
        assert cold.allocator_solves == 0
        assert cold.evaluated_by_fidelity == {"cold": space.size}
        assert all(r.status == "cold" for r in cold.new_records)

        # Warm the store with a real compile pass, then re-probe.
        DSERunner(space, fidelity="compile", cache_dir=cache_dir).run()
        warm = DSERunner(space, fidelity="cached", cache_dir=cache_dir).run()
        assert warm.evaluated_by_fidelity == {"cached": space.size}
        assert warm.allocator_solves == 0
        assert all(r.feasible for r in warm.new_records)

    def test_cold_records_are_not_persisted(self, tmp_path):
        space = tiny_space(arrays=(4, 8))
        run_dir = tmp_path / "run"
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(
                space, fidelity="cached", cache_dir=tmp_path / "cache", state=state
            ).run()
        assert len(state.completed) == 0

    def test_record_fidelity_round_trips_and_defaults_to_compile(self):
        record = EvaluationRecord(
            point_key="k", model="m", workload="w", hardware="h", num_arrays=4,
            hardware_fingerprint="f", coords=(0,), allow_memory_mode=True,
            objective="latency", fidelity="analytical", lower_bound=True,
        )
        payload = record.to_dict()
        assert payload["fidelity"] == "analytical"
        assert payload["lower_bound"] is True
        assert EvaluationRecord.from_dict(payload).fidelity == "analytical"
        # Legacy payloads (pre-fidelity) deserialise as full compiles.
        del payload["fidelity"], payload["lower_bound"]
        legacy = EvaluationRecord.from_dict(payload)
        assert legacy.fidelity == "compile"
        assert legacy.lower_bound is False

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            DSERunner(tiny_space(), fidelity="psychic")

    def test_mixed_fidelity_frontier_excludes_lower_bounds(self):
        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        result = DSERunner(space, fidelity="auto").run()
        frontier = result.frontier()
        assert frontier, "auto run must produce a frontier"
        # Greedy records describe real (achievable) plans, so they may
        # participate; analytical lower bounds never do.
        assert all(r.fidelity in ("greedy", "compile", "cached") for r in frontier)
        assert not any(r.lower_bound for r in frontier)


class TestSuccessiveHalvingStrategy:
    def test_rung0_covers_the_space_then_promotes_best(self):
        # Two-rung ladder: the pre-greedy schedule, still supported.
        from repro.dse import SuccessiveHalvingStrategy

        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        strategy = SuccessiveHalvingStrategy(
            seed=3, keep_fraction=0.25, rungs=("analytical", "compile")
        )
        strategy.bind(space)
        rung0 = []
        while True:
            batch = strategy.ask(5)
            if strategy.fidelity != "analytical" or not batch:
                promotions = batch
                break
            rung0.extend(batch)
            records = [
                EvaluationRecord(
                    point_key=p.key, model=p.model_name, workload="w", hardware="h",
                    num_arrays=p.hardware.num_arrays, hardware_fingerprint="f",
                    coords=p.coords, allow_memory_mode=True, objective="latency",
                    fidelity="analytical", feasible=True,
                    objective_value=float(sum(p.coords)),
                )
                for p in batch
            ]
            strategy.tell(records)
        assert sorted(p.coords for p in rung0) == sorted(space.coordinates())
        assert strategy.fidelity == "compile"
        keep = math.ceil(space.size * 0.25)
        collected = list(promotions)
        while not strategy.exhausted:
            more = strategy.ask(5)
            if not more:
                break
            collected.extend(more)
        assert len(collected) == keep
        # The best rung-0 scores (lowest coord sums) were promoted.
        scores = sorted(sum(c) for c in space.coordinates())[:keep]
        assert sorted(sum(p.coords) for p in collected) == scores
        assert strategy.exhausted

    def test_infeasible_rung0_points_are_never_promoted(self):
        from repro.dse import SuccessiveHalvingStrategy

        space = tiny_space(arrays=(4, 8))
        strategy = SuccessiveHalvingStrategy(seed=0, keep_fraction=1.0)
        strategy.bind(space)
        batch = strategy.ask(space.size)
        records = [
            EvaluationRecord(
                point_key=p.key, model=p.model_name, workload="w", hardware="h",
                num_arrays=p.hardware.num_arrays, hardware_fingerprint="f",
                coords=p.coords, allow_memory_mode=True, objective="latency",
                fidelity="analytical", feasible=(index == 0),
                objective_value=1.0 if index == 0 else math.inf,
            )
            for index, p in enumerate(batch)
        ]
        strategy.tell(records)
        promotions = strategy.ask(space.size)
        assert len(promotions) == 1
        assert promotions[0].key == batch[0].key

    def test_registered_with_make_strategy(self):
        from repro.dse import SuccessiveHalvingStrategy

        strategy = make_strategy("successive-halving", seed=5)
        assert isinstance(strategy, SuccessiveHalvingStrategy)
        assert strategy.seed == 5

    def test_default_ladder_walks_analytical_greedy_compile(self):
        from repro.dse import SuccessiveHalvingStrategy

        space = tiny_space(arrays=(4, 6, 8), modes=(True, False))
        strategy = SuccessiveHalvingStrategy(seed=1, keep_fractions=(0.5, 0.5))
        strategy.bind(space)
        rung_order = []
        counts = {}
        while not strategy.exhausted:
            batch = strategy.ask(space.size)
            if not batch:
                break
            fidelity = strategy.fidelity
            if not rung_order or rung_order[-1] != fidelity:
                rung_order.append(fidelity)
            counts[fidelity] = counts.get(fidelity, 0) + len(batch)
            strategy.tell(
                [
                    EvaluationRecord(
                        point_key=p.key, model=p.model_name, workload="w",
                        hardware="h", num_arrays=p.hardware.num_arrays,
                        hardware_fingerprint="f", coords=p.coords,
                        allow_memory_mode=True, objective="latency",
                        fidelity=fidelity, feasible=True,
                        objective_value=float(sum(p.coords)),
                    )
                    for p in batch
                ]
            )
        assert rung_order == ["analytical", "greedy", "compile"]
        assert counts["analytical"] == space.size
        assert counts["greedy"] == math.ceil(space.size * 0.5)
        assert counts["compile"] == math.ceil(counts["greedy"] * 0.5)
        assert strategy.exhausted

    def test_ladder_shape_is_validated(self):
        from repro.dse import SuccessiveHalvingStrategy

        with pytest.raises(ValueError, match="one keep fraction per promotion"):
            SuccessiveHalvingStrategy(keep_fractions=(0.5,))
        with pytest.raises(ValueError, match=r"in \(0, 1\]"):
            SuccessiveHalvingStrategy(keep_fractions=(0.5, 1.5))
        with pytest.raises(ValueError, match="at least two rungs"):
            SuccessiveHalvingStrategy(rungs=("compile",))


class TestGreedyKeyDedup:
    def test_duplicate_axis_values_are_proposed_once(self):
        # arrays=(4, 4) aliases two coordinates onto one point key; the
        # strategy must never propose the same key twice, even when a
        # survivor's neighbourhood collapses onto the alias at the edge.
        space = tiny_space(arrays=(4, 4), modes=(True, False))
        strategy = GreedyStrategy(seed=0)
        strategy.bind(space)
        seen = []
        while not strategy.exhausted:
            batch = strategy.ask(2)
            if not batch:
                break
            seen.extend(batch)
            records = [
                EvaluationRecord(
                    point_key=p.key, model=p.model_name, workload="w", hardware="h",
                    num_arrays=p.hardware.num_arrays, hardware_fingerprint="f",
                    coords=p.coords, allow_memory_mode=True, objective="latency",
                    feasible=True, objective_value=1.0,
                )
                for p in batch
            ]
            strategy.tell(records)
        keys = [p.key for p in seen]
        assert len(keys) == len(set(keys)), "greedy proposed a point key twice"
        # Every distinct key of the space was still covered.
        assert set(keys) == {p.key for p in space.points()}

    def test_told_keys_are_never_reproposed(self):
        # Records told from a resumed run (never asked this session) must
        # also suppress proposals of their keys.
        space = tiny_space(arrays=(4, 8), modes=(True, False))
        strategy = GreedyStrategy(seed=0)
        strategy.bind(space)
        pre_told = list(space.points())[:2]
        strategy.tell(
            [
                EvaluationRecord(
                    point_key=p.key, model=p.model_name, workload="w", hardware="h",
                    num_arrays=p.hardware.num_arrays, hardware_fingerprint="f",
                    coords=p.coords, allow_memory_mode=True, objective="latency",
                    feasible=True, objective_value=1.0,
                )
                for p in pre_told
            ]
        )
        told_keys = {p.key for p in pre_told}
        proposed = []
        while not strategy.exhausted:
            batch = strategy.ask(3)
            if not batch:
                break
            proposed.extend(batch)
        assert told_keys.isdisjoint({p.key for p in proposed})

    def test_no_budget_burned_on_aliased_points_in_runner(self):
        space = tiny_space(arrays=(4, 4))
        result = DSERunner(space, strategy=GreedyStrategy(seed=0)).run()
        # Two aliased coordinates, one structural reality: exactly one
        # evaluation, zero replications.
        assert result.evaluated == 1
        assert result.replicated == 0


class TestParetoTies:
    def _record(self, key, latency, energy, arrays, feasible=True):
        return EvaluationRecord(
            point_key=key, model="m", workload="w", hardware="h",
            num_arrays=arrays, hardware_fingerprint="f", coords=(0,),
            allow_memory_mode=True, objective="latency", feasible=feasible,
            latency_ms=latency, energy_mj=energy, objective_value=latency,
        )

    def test_equal_latency_points_both_survive(self):
        a = self._record("a", latency=1.0, energy=2.0, arrays=4)
        b = self._record("b", latency=1.0, energy=3.0, arrays=2)
        frontier = pareto_frontier([a, b], axes=("latency_ms", "energy_mj", "num_arrays"))
        assert {r.point_key for r in frontier} == {"a", "b"}

    def test_fully_tied_points_all_survive(self):
        records = [
            self._record(key, latency=5.0, energy=5.0, arrays=8)
            for key in ("x", "y", "z")
        ]
        frontier = pareto_frontier(records)
        assert {r.point_key for r in frontier} == {"x", "y", "z"}

    def test_tied_frontier_order_is_deterministic(self):
        records = [
            self._record(key, latency=5.0, energy=5.0, arrays=8)
            for key in ("zz", "aa", "mm")
        ]
        forward = pareto_frontier(records)
        backward = pareto_frontier(list(reversed(records)))
        assert [r.point_key for r in forward] == [r.point_key for r in backward]
        assert [r.point_key for r in forward] == ["aa", "mm", "zz"]

    def test_csv_order_is_deterministic_for_ties(self, tmp_path):
        records = [
            self._record("b", latency=1.0, energy=1.0, arrays=4),
            self._record("a", latency=1.0, energy=1.0, arrays=4),
        ]
        first = write_csv(tmp_path / "one.csv", records).read_text()
        second = write_csv(tmp_path / "two.csv", records).read_text()
        assert first == second
        rows = [line.split(",")[0] for line in first.splitlines()[1:]]
        assert rows == ["b", "a"]  # input order, both flagged pareto
        assert all(line.rstrip().endswith(",1") for line in first.splitlines()[1:])

    def test_csv_carries_fidelity_and_lower_bound_columns(self, tmp_path):
        record = self._record("a", latency=1.0, energy=1.0, arrays=4)
        record.fidelity = "analytical"
        record.lower_bound = True
        text = write_csv(tmp_path / "f.csv", [record]).read_text()
        header = text.splitlines()[0].split(",")
        assert "fidelity" in header and "lower_bound" in header
        row = dict(zip(header, text.splitlines()[1].split(",")))
        assert row["fidelity"] == "analytical"
        assert row["lower_bound"] == "True"


class TestDseCliFidelity:
    def test_cli_fidelity_analytical_runs_zero_solves(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "dse", "tiny-cnn", "--strategy", "grid", "--fidelity", "analytical",
                "--run-dir", str(tmp_path / "run"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "total allocator solves: 0" in out
        assert "fidelity: analytical=" in out
        assert "[analytical/evaluated/ok]" in out

    def test_cli_fidelity_auto_notes_the_schedule(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "dse", "tiny-cnn", "--strategy", "grid", "--fidelity", "auto",
                "--run-dir", str(tmp_path / "run"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "successive-halving" in out
        assert "analytical=" in out and "compile=" in out

    def test_cold_records_do_not_shadow_stored_results(self, tmp_path):
        # An analytical run's records must survive a cached-fidelity
        # resume against a cold store: the declined probes carry no
        # metrics and must not replace the stored bounds in the report.
        space = tiny_space(arrays=(4, 8))
        run_dir = tmp_path / "run"
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid"
        ) as state:
            DSERunner(space, fidelity="analytical", state=state).run()
        with RunState.open(
            run_dir, space.to_spec(), space.fingerprint(), "latency", "grid",
            resume=True,
        ) as state:
            result = DSERunner(
                space, fidelity="cached", cache_dir=tmp_path / "cold-store",
                state=state,
            ).run()
        by_key = {r.point_key: r for r in result.records}
        assert len(by_key) == space.size
        assert all(r.fidelity == "analytical" and r.feasible for r in by_key.values())
        assert result.frontier(), "stored analytical frontier must survive"
        # The declines are still visible in this run's log.
        assert sum(1 for r in result.new_records if r.status == "cold") == space.size

    def test_cached_batch_uses_the_service_pool(self, tmp_path, monkeypatch):
        # evaluate_batch must route warm candidates through
        # CompileService.compile_batch (one pooled call), not compile
        # them one-by-one in the caller.
        from repro.eval import CachedEvaluator
        from repro.service import CompileService

        space = tiny_space(arrays=(4, 8))
        cache_dir = tmp_path / "cache"
        DSERunner(space, fidelity="compile", cache_dir=cache_dir).run()

        service = CompileService(cache_dir=cache_dir)
        batches = []
        original = CompileService.compile_batch

        def spy(self, jobs, *args, **kwargs):
            batches.append(len(list(jobs)))
            return original(self, jobs, *args, **kwargs)

        monkeypatch.setattr(CompileService, "compile_batch", spy)
        from repro.service import CompileJob

        jobs = [
            CompileJob(
                p.model, workload=p.workload, hardware=p.hardware, options=p.options
            )
            for p in space.points()
        ]
        evaluations = CachedEvaluator(service).evaluate_batch(jobs)
        assert batches == [len(jobs)]
        assert all(e.feasible and not e.skipped for e in evaluations)

    def test_mixed_report_never_crowns_a_lower_bound(self):
        # In an auto run a non-promoted point keeps its optimistic
        # analytical record; the "best" line and the dominance counts
        # must rank only full-fidelity records.
        from repro.dse import render_report

        bound = EvaluationRecord(
            point_key="bound", model="m", workload="w", hardware="h", num_arrays=4,
            hardware_fingerprint="f", coords=(0,), allow_memory_mode=True,
            objective="latency", fidelity="analytical", lower_bound=True,
            feasible=True, latency_ms=1.0, energy_mj=1.0, objective_value=1.0,
        )
        real = EvaluationRecord(
            point_key="real", model="m", workload="w", hardware="h", num_arrays=4,
            hardware_fingerprint="f", coords=(1,), allow_memory_mode=True,
            objective="latency", fidelity="compile",
            feasible=True, latency_ms=5.0, energy_mj=5.0, objective_value=5.0,
        )
        report = render_report([bound, real])
        assert "best (latency): m @ 4 arrays -> 5.000" in report
        assert "lower-bound screened: 1" in report

    def test_cached_run_probes_each_canonical_job_once(self, tmp_path, monkeypatch):
        space = tiny_space(arrays=(4, 8), models=("tiny-cnn", "tiny-mlp"))
        cache_dir = tmp_path / "cache"
        DSERunner(space, fidelity="compile", cache_dir=cache_dir).run()

        calls = []
        original = DiskCacheStore.contains

        def counting(self, key):
            calls.append(key)
            return original(self, key)

        monkeypatch.setattr(DiskCacheStore, "contains", counting)
        result = DSERunner(space, fidelity="cached", cache_dir=cache_dir).run()
        assert result.evaluated_by_fidelity == {"cached": space.size}
        # One probe per canonical job (the planner's); the evaluator
        # trusts the warm hint instead of probing again.
        assert len(calls) == space.size


# ---------------------------------------------------------------------- #
# trace_p99 objective
# ---------------------------------------------------------------------- #
class TestTraceObjective:
    def _trace(self):
        from repro.sim.traces import poisson_trace

        return poisson_trace(
            ["tiny-mlp", "tiny-cnn"], num_requests=8, seed=5, seq_len_buckets=(16,)
        )

    def test_requires_a_trace(self):
        with pytest.raises(ValueError, match="requires a trace"):
            DSERunner(tiny_space(), objective="trace_p99")

    def test_rejects_planless_fidelities(self):
        trace = self._trace()
        for fidelity in ("analytical", "auto"):
            with pytest.raises(ValueError, match="real compiled plans"):
                DSERunner(
                    tiny_space(), objective="trace_p99", fidelity=fidelity, trace=trace
                )

    def test_scores_points_by_trace_p99(self):
        trace = self._trace()
        result = DSERunner(tiny_space(), objective="trace_p99", trace=trace).run()
        feasible = [r for r in result.records if r.feasible]
        assert feasible
        for record in feasible:
            assert math.isfinite(record.trace_p99_ms)
            assert record.objective_value == record.trace_p99_ms
            # Tail latency under traffic is bounded below by the
            # single-inference latency of the slowest trace program —
            # in particular it cannot be *faster* than one inference of
            # the point's own model family would suggest.
            assert record.trace_p99_ms > 0.0

    def test_replay_memoised_per_hardware_options(self):
        # Two models per point set share (hardware, options) pairs; the
        # trace must be replayed once per pair, not once per point.
        trace = self._trace()
        runner = DSERunner(
            tiny_space(models=("tiny-cnn", "tiny-mlp")),
            objective="trace_p99",
            trace=trace,
        )
        runner.run()
        # 2 array counts x 1 option set = 2 distinct replays.
        assert len(runner._trace_scores) == 2

    def test_record_round_trips_trace_metric(self):
        trace = self._trace()
        result = DSERunner(
            tiny_space(arrays=(8,)), objective="trace_p99", trace=trace
        ).run()
        record = next(r for r in result.records if r.feasible)
        clone = EvaluationRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone.trace_p99_ms == pytest.approx(record.trace_p99_ms)
        # Non-finite trace metrics serialise as null and come back inf.
        record.trace_p99_ms = math.inf
        clone = EvaluationRecord.from_dict(record.to_dict())
        assert clone.trace_p99_ms == math.inf
