"""Rung-0 evaluation: closed-form lower bounds, zero allocator solves.

The analytical tier answers "how good could this candidate possibly be,
and can it run at all?" without touching the segmentation DP or either
allocation engine.  It flattens the graph exactly the way the compile
pipeline does (profiling, oversized-operator partitioning — both
deterministic and allocator-free), asks the shared
:class:`~repro.core.feasibility.FeasibilityModel` whether every unit
fits, and scores the candidate with the
:mod:`repro.cost.analytical` bounds.

Guarantees (ratcheted by the calibration suite in
``tests/test_eval.py``):

* **feasibility is exact** — the tier reports feasible exactly when the
  full compiler would produce a program (the unit-fit predicate is
  necessary and sufficient; see :mod:`repro.core.feasibility`);
* **metrics are true lower bounds** — the reported latency and energy
  never exceed the compiled plan's;
* **zero allocator solves** — neither MILP nor greedy allocation runs,
  so a whole design space can be scored in milliseconds.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.compiler import CompilerOptions
from ..core.feasibility import FeasibilityModel
from ..core.segmentation import FlattenedUnit, flatten_graph
from ..cost.analytical import analytical_graph_estimate
from ..cost.energy import EnergyParameters
from ..service import CompileJob
from .base import Evaluation, Evaluator

__all__ = ["AnalyticalEvaluator"]


class AnalyticalEvaluator(Evaluator):
    """Scores candidates with allocator-free closed-form lower bounds.

    Stateless with respect to caches and services — it needs neither.
    Flattened units are memoised per (graph, hardware fingerprint), so
    sweeping many hardware variants of one model re-flattens only when
    the chip's partitioning budget actually changes the units.

    Args:
        energy_parameters: Energy coefficients for the bound (defaults
            scaled to each candidate's hardware, matching
            :func:`repro.cost.energy.estimate_energy`).
    """

    fidelity = "analytical"

    #: Bound of the per-evaluator flattening memo (see :meth:`_units`).
    MEMO_ENTRIES = 64

    def __init__(self, energy_parameters: Optional[EnergyParameters] = None) -> None:
        self.energy_parameters = energy_parameters
        # id(graph) alone is not a safe key — a garbage-collected graph's
        # address can be reused by a different model's graph.  Each entry
        # therefore pins the graph it was built from (keeping its id
        # allocated) and is verified by identity on lookup; the memo is
        # LRU-bounded so pinned graphs cannot accumulate without limit.
        self._units_memo: "OrderedDict[Tuple[int, str], Tuple[object, List[FlattenedUnit]]]" = (
            OrderedDict()
        )

    def _units(self, graph, hardware) -> List[FlattenedUnit]:
        key = (id(graph), hardware.fingerprint())
        entry = self._units_memo.get(key)
        if entry is not None and entry[0] is graph:
            self._units_memo.move_to_end(key)
            return entry[1]
        units = flatten_graph(graph, hardware)
        self._units_memo[key] = (graph, units)
        self._units_memo.move_to_end(key)
        while len(self._units_memo) > self.MEMO_ENTRIES:
            self._units_memo.popitem(last=False)
        return units

    def evaluate(self, job: CompileJob) -> Evaluation:
        """Score one candidate; failures are captured in the result."""
        start = time.perf_counter()
        try:
            graph = job.resolve_graph()
            hardware = job.resolve_hardware()
            options = job.options or CompilerOptions(generate_code=False)
            units = self._units(graph, hardware)
            profiles = {unit.name: unit.profile for unit in units}
            feasibility = FeasibilityModel(hardware)
            unfit = feasibility.first_unfit(profiles)
            estimate = analytical_graph_estimate(
                list(profiles.values()),
                hardware,
                allow_memory_mode=options.allow_memory_mode,
                block_repeat=float(graph.metadata.get("block_repeat", 1.0)),
                parameters=self.energy_parameters,
            )
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            return Evaluation(
                fidelity=self.fidelity,
                error=f"{type(exc).__name__}: {exc}",
                failed=True,
                lower_bound=True,
                eval_seconds=time.perf_counter() - start,
            )
        if unfit is not None:
            return Evaluation(
                fidelity=self.fidelity,
                feasible=False,
                lower_bound=True,
                peak_arrays=estimate.min_peak_arrays,
                error=(
                    f"unit {unfit!r} needs more than the chip's "
                    f"{hardware.num_arrays} arrays"
                ),
                eval_seconds=time.perf_counter() - start,
            )
        return Evaluation(
            fidelity=self.fidelity,
            feasible=True,
            latency_ms=hardware.cycles_to_ms(estimate.end_to_end_cycles),
            cycles=estimate.end_to_end_cycles,
            energy_mj=estimate.end_to_end_mj,
            num_segments=0,
            peak_arrays=estimate.min_peak_arrays,
            lower_bound=True,
            eval_seconds=time.perf_counter() - start,
        )
