#!/usr/bin/env python3
"""Large-language-model inference on a dual-mode CIM chip.

The paper's headline use case: models such as LLaMA2-7B and OPT-13B do not
fit on the chip and spend most of their time moving data, so CMSwitch puts
a substantial share of the arrays in memory mode to hold activations and
the KV cache.  This example

* compiles a LLaMA2-7B transformer block for both the prefill and the
  decode phase,
* compares CMSwitch against the strongest fixed-mode baseline (CIM-MLC),
* integrates a full generation (prompt processing + token-by-token
  decoding) from the per-phase results,
* prints the compute/memory allocation the compiler chose per segment.

Run with ``python examples/llm_inference.py``.
"""

from repro.baselines import CIMMLCCompiler
from repro.core import CMSwitchCompiler, CompilerOptions
from repro.experiments import generative_cycles
from repro.hardware import dynaplasia
from repro.models import Phase, Workload, build_model

MODEL = "llama2-7b"
PROMPT_TOKENS = 128
GENERATED_TOKENS = 64
BATCH_SIZE = 1


def compile_phase(hardware, workload, label: str) -> None:
    """Compile one phase with CMSwitch and CIM-MLC and print the comparison."""
    graph = build_model(MODEL, workload)
    cmswitch = CMSwitchCompiler(hardware, CompilerOptions(generate_code=False)).compile(graph)
    cim_mlc = CIMMLCCompiler(hardware).compile(graph)
    speedup = cim_mlc.end_to_end_cycles / cmswitch.end_to_end_cycles
    print(f"--- {label} ---")
    print(f"  CMSwitch : {cmswitch.end_to_end_ms:8.3f} ms "
          f"({cmswitch.num_segments} segments/block, "
          f"{cmswitch.mean_memory_array_ratio * 100:.1f}% arrays in memory mode)")
    print(f"  CIM-MLC  : {cim_mlc.end_to_end_ms:8.3f} ms")
    print(f"  speedup  : {speedup:.2f}x")
    print("  per-segment allocation (first 6 segments):")
    for segment in cmswitch.segments[:6]:
        print(
            f"    seg {segment.index:2d}: compute={segment.compute_arrays:3d} "
            f"memory={segment.memory_arrays:3d}  ops={len(segment.operator_names)}"
        )
    print()


def main() -> None:
    hardware = dynaplasia()
    print(f"target chip: {hardware.name} "
          f"({hardware.num_arrays} arrays of {hardware.array_rows}x{hardware.array_cols})")
    print()

    prefill = Workload(batch_size=BATCH_SIZE, seq_len=PROMPT_TOKENS, phase=Phase.PREFILL)
    decode = Workload(
        batch_size=BATCH_SIZE,
        seq_len=PROMPT_TOKENS,
        output_len=GENERATED_TOKENS,
        phase=Phase.DECODE,
    )
    compile_phase(hardware, prefill, f"prefill ({PROMPT_TOKENS} tokens)")
    compile_phase(hardware, decode, "decode (one token against the KV cache)")

    # Full generation: prefill once, then one decode step per new token.
    workload = Workload(
        batch_size=BATCH_SIZE, seq_len=PROMPT_TOKENS, output_len=GENERATED_TOKENS
    )
    cms = generative_cycles(MODEL, workload, hardware, "cmswitch")
    mlc = generative_cycles(MODEL, workload, hardware, "cim-mlc")
    print("--- full generation "
          f"({PROMPT_TOKENS} prompt + {GENERATED_TOKENS} generated tokens) ---")
    print(f"  CMSwitch : {hardware.cycles_to_ms(cms['cycles']):8.1f} ms")
    print(f"  CIM-MLC  : {hardware.cycles_to_ms(mlc['cycles']):8.1f} ms")
    print(f"  speedup  : {mlc['cycles'] / cms['cycles']:.2f}x")


if __name__ == "__main__":
    main()
