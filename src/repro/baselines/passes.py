"""Pipeline passes that express the fixed-mode baselines.

The PUMA and OCC baselines differ from CMSwitch only in two stages:
*how operators are grouped into segments* and *how each segment is
allocated* (minimum all-compute footprint plus optional duplication,
instead of the DP-driven MIP).  These passes plug exactly those two
stages into the shared pipeline — ``Flatten`` and
``PartitionOversized`` are reused verbatim, so a baseline compile is a
*pipeline configuration*, not a parallel code path, and gets per-pass
timing stats for free.  (CIM-MLC needs no passes of its own: it is the
standard CMSwitch pipeline with memory mode pinned off.)

The plan construction here mirrors the frozen pre-pipeline loop
(:func:`repro.core._reference.reference_baseline_compile`) operator for
operator; the baseline parity tests assert bit-identical programs.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..core.codegen import generate_program
from ..core.program import SegmentPlan
from ..core.segmentation import SegmentationResult, live_elements_at_boundary
from ..cost.latency import segment_latency_cycles
from ..cost.switching import (
    SegmentResources,
    aggregate_resources,
    inter_segment_breakdown,
)
from ..pipeline.context import PipelineContext
from ..pipeline.passes import Pass

__all__ = ["BaselineAllocate", "BaselineCodegen", "BaselineSegment"]

#: Context key the segment pass hands its groups to the allocate pass on.
GROUPS_KEY = "baseline_groups"


class BaselineSegment(Pass):
    """Group units with the baseline's segmentation strategy.

    Delegates to the owning compiler's ``segment_boundaries`` hook
    (greedy chip-filling packing for PUMA, one-operator-per-segment for
    OCC), so subclass strategies keep working unchanged.
    """

    name = "segment"

    def __init__(self, baseline) -> None:
        self.baseline = baseline

    def run(self, ctx: PipelineContext) -> None:
        if ctx.units is None:
            raise RuntimeError("BaselineSegment requires the PartitionOversized pass")
        ctx.extras[GROUPS_KEY] = (
            self.baseline.segment_boundaries(ctx.units) if ctx.units else []
        )


class BaselineAllocate(Pass):
    """Fixed-mode allocation and plan construction for every group.

    Minimum compute footprint per operator via the compiler's
    ``allocate`` hook (with its duplication refinement, when enabled),
    then the same latency / liveness / inter-segment accounting the
    fused baseline loop performed.
    """

    name = "allocate"

    def __init__(self, baseline) -> None:
        self.baseline = baseline

    def run(self, ctx: PipelineContext) -> None:
        start = time.perf_counter()
        groups = ctx.extras.pop(GROUPS_KEY, None)
        if groups is None:
            raise RuntimeError("BaselineAllocate requires the BaselineSegment pass")
        units = ctx.units
        hardware = ctx.hardware
        baseline = self.baseline
        segments: List[SegmentPlan] = []
        previous_resources: Optional[SegmentResources] = None
        for seg_index, indices in enumerate(groups):
            members = [units[i] for i in indices]
            profiles = {unit.name: unit.profile for unit in members}
            allocations = baseline.allocate(profiles)
            intra = segment_latency_cycles(
                profiles, allocations, hardware, pipelined=baseline.pipelined
            )
            boundary = indices[-1]
            live = (
                live_elements_at_boundary(units, boundary)
                if boundary + 1 < len(units)
                else 0
            )
            resources = aggregate_resources(
                profiles,
                allocations,
                live_output_elements=live,
                num_arrays_total=hardware.num_arrays,
            )
            breakdown = inter_segment_breakdown(
                previous_resources,
                resources,
                profiles,
                allocations,
                hardware,
                allow_boundary_buffering=False,
            )
            segments.append(
                SegmentPlan(
                    index=seg_index,
                    operator_names=[unit.name for unit in members],
                    allocations=allocations,
                    profiles=profiles,
                    intra_cycles=intra,
                    inter_cycles=sum(breakdown.values()),
                    inter_breakdown=breakdown,
                    resources=resources,
                )
            )
            previous_resources = resources
        ctx.result = SegmentationResult(
            segments,
            list(units),
            time.perf_counter() - start,
            0,
        )
        ctx.dp_seconds = ctx.result.dp_seconds


class BaselineCodegen(Pass):
    """Lower baseline plans to the meta-operator flow.

    Unlike the CMSwitch ``Codegen`` pass this one carries no
    feasibility guard: the fused baseline loop generated code for
    whatever plan it built (baselines have no fallback arbitration and
    never raise ``NoFeasiblePlanError``), and parity preserves that.
    """

    name = "codegen"

    def enabled(self, ctx: PipelineContext) -> bool:
        return bool(ctx.options.generate_code)

    def run(self, ctx: PipelineContext) -> None:
        if ctx.result is None or not ctx.result.segments:
            return
        ctx.meta_program = generate_program(
            ctx.graph.name, ctx.result.segments, ctx.hardware
        )
