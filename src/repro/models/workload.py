"""Workload descriptions (batch size, sequence lengths, inference phase).

The paper evaluates every network under varying batch sizes and, for the
transformer models, input/output sequence lengths (Figs. 14, 16, 17).  A
:class:`Workload` captures these knobs; the model builders consume it when
constructing a graph so shapes, KV-cache sizes and arithmetic intensities
follow the requested scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Mapping, Optional


class Phase(Enum):
    """Inference phase of an autoregressive transformer.

    * ``PREFILL`` — the whole input prompt is processed at once
      (sequence-parallel attention; high arithmetic intensity).
    * ``DECODE`` — one token is generated per step, attending to the
      accumulated KV cache (GEMV-shaped products; low arithmetic intensity).
    * ``ENCODE`` — encoder-only models such as BERT (a single
      sequence-parallel pass, no KV cache growth).
    """

    PREFILL = "prefill"
    DECODE = "decode"
    ENCODE = "encode"


@dataclass(frozen=True)
class Workload:
    """Parameters describing one inference request.

    Attributes:
        batch_size: Number of sequences / images per inference.
        seq_len: Input (prompt) sequence length for transformer models.
        output_len: Number of generated tokens for decoder models.  Ignored
            by encoder-only and CNN models.
        phase: Which phase a transformer graph should describe.  CNN models
            ignore this field.
        kv_len: KV-cache length seen by a decode-phase graph.  ``None``
            means "use a representative value" (input length plus half the
            output length), which is what the experiment harness does when
            it integrates a full generation from a single decode-step graph.
        image_size: Input resolution for CNN models (ImageNet default 224).
    """

    batch_size: int = 1
    seq_len: int = 64
    output_len: int = 64
    phase: Phase = Phase.PREFILL
    kv_len: Optional[int] = None
    image_size: int = 224

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {self.seq_len}")
        if self.output_len < 0:
            raise ValueError(f"output_len must be non-negative, got {self.output_len}")
        if self.image_size <= 0:
            raise ValueError(f"image_size must be positive, got {self.image_size}")
        if self.kv_len is not None and self.kv_len <= 0:
            raise ValueError(f"kv_len must be positive when given, got {self.kv_len}")

    @property
    def effective_kv_len(self) -> int:
        """KV-cache length used when building a decode-phase graph.

        A generation of ``output_len`` tokens sees KV lengths from
        ``seq_len`` to ``seq_len + output_len``; the midpoint is the
        representative length whose per-step cost, multiplied by
        ``output_len``, integrates the whole generation.
        """
        if self.kv_len is not None:
            return self.kv_len
        return self.seq_len + max(self.output_len, 1) // 2

    def prefill(self) -> "Workload":
        """This workload restricted to the prefill phase."""
        return replace(self, phase=Phase.PREFILL)

    def decode(self, kv_len: Optional[int] = None) -> "Workload":
        """This workload restricted to a decode step at ``kv_len``."""
        return replace(self, phase=Phase.DECODE, kv_len=kv_len)

    def encode(self) -> "Workload":
        """This workload restricted to an encoder pass."""
        return replace(self, phase=Phase.ENCODE)

    def with_batch(self, batch_size: int) -> "Workload":
        """Copy with a different batch size."""
        return replace(self, batch_size=batch_size)

    def with_seq_len(self, seq_len: int) -> "Workload":
        """Copy with a different input sequence length."""
        return replace(self, seq_len=seq_len)

    def with_output_len(self, output_len: int) -> "Workload":
        """Copy with a different output sequence length."""
        return replace(self, output_len=output_len)

    def describe(self) -> str:
        """Short human-readable description used in reports."""
        return (
            f"batch={self.batch_size} seq={self.seq_len} out={self.output_len} "
            f"phase={self.phase.value}"
        )


def workload_to_payload(workload: Workload) -> Dict:
    """Canonical JSON-compatible rendering of a workload.

    This is the one serialisation every persistence layer shares — DSE
    point keys and run directories (:mod:`repro.dse.space`) and the
    request-trace format (:mod:`repro.sim.traces`) — so a workload
    written by one subsystem always reads back identically in another.
    """
    return {
        "batch_size": workload.batch_size,
        "seq_len": workload.seq_len,
        "output_len": workload.output_len,
        "phase": workload.phase.value,
        "kv_len": workload.kv_len,
        "image_size": workload.image_size,
    }


def workload_from_payload(payload: Mapping) -> Workload:
    """Rebuild a workload from :func:`workload_to_payload` output.

    Raises:
        ValueError: Invalid field values (via ``Workload.__post_init__``)
            or an unknown phase name.
        KeyError: A required field is missing from the payload.
    """
    return Workload(
        batch_size=payload["batch_size"],
        seq_len=payload["seq_len"],
        output_len=payload["output_len"],
        phase=Phase(payload["phase"]),
        kv_len=payload.get("kv_len"),
        image_size=payload.get("image_size", 224),
    )
