"""Shared transformer building blocks.

All transformer models in the paper's benchmark set (BERT, GPT, OPT,
LLaMA 2) share the same block skeleton — multi-head attention followed by a
feed-forward network — and differ only in dimensions, activation function,
normalisation style and whether the FFN is gated.  This module builds that
skeleton for either an encoder / prefill pass (sequence-parallel attention)
or a single autoregressive decode step (GEMV-shaped attention against the
KV cache).

Following §5.6 of the paper ("the compilation results of a single block
[can] be reused across all layers"), the default graph contains one
physical block and records ``block_repeat`` metadata so end-to-end latency
is obtained by multiplying the compiled block latency by the layer count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...ir.builder import GraphBuilder
from ...ir.graph import Graph
from ...ir.tensor import DataType, TensorSpec
from ..workload import Phase, Workload


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyper-parameters of a transformer model.

    Attributes:
        name: Model identifier, e.g. ``"llama2-7b"``.
        hidden_size: Model (embedding) dimension.
        num_layers: Number of transformer blocks.
        num_heads: Number of attention heads.
        ffn_hidden: Feed-forward inner dimension.
        vocab_size: Vocabulary size (embedding / LM-head width).
        activation: FFN activation function name.
        gated_ffn: Whether the FFN uses a gated (SwiGLU-style) structure.
        norm: ``"layernorm"`` or ``"rmsnorm"``.
        num_kv_heads: Number of key/value heads (grouped-query attention);
            equal to ``num_heads`` for standard multi-head attention.
        causal: Whether attention is causal (decoder-style).
    """

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    ffn_hidden: int
    vocab_size: int = 32000
    activation: str = "gelu"
    gated_ffn: bool = False
    norm: str = "layernorm"
    num_kv_heads: Optional[int] = None
    causal: bool = True

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible by "
                f"num_heads {self.num_heads}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def kv_heads(self) -> int:
        """Number of key/value heads."""
        return self.num_kv_heads if self.num_kv_heads is not None else self.num_heads

    @property
    def kv_hidden(self) -> int:
        """Total key/value projection width."""
        return self.kv_heads * self.head_dim

    @property
    def approx_parameters(self) -> int:
        """Approximate parameter count of the full model (weights only)."""
        per_block = (
            self.hidden_size * self.hidden_size  # Q
            + 2 * self.hidden_size * self.kv_hidden  # K, V
            + self.hidden_size * self.hidden_size  # output projection
        )
        if self.gated_ffn:
            per_block += 3 * self.hidden_size * self.ffn_hidden
        else:
            per_block += 2 * self.hidden_size * self.ffn_hidden
        embeddings = self.vocab_size * self.hidden_size
        return self.num_layers * per_block + 2 * embeddings


def attention_sequence_lengths(config: TransformerConfig, workload: Workload) -> tuple:
    """Query length and key/value length implied by the workload phase.

    Returns:
        ``(q_len, kv_len)``: prefill and encoder passes attend over the
        whole input (``q_len == kv_len == seq_len``); a decode step issues
        one query against the accumulated cache.
    """
    if workload.phase is Phase.DECODE:
        return 1, workload.effective_kv_len
    return workload.seq_len, workload.seq_len


def add_transformer_block(
    builder: GraphBuilder,
    config: TransformerConfig,
    x: TensorSpec,
    block_index: int,
    workload: Workload,
) -> TensorSpec:
    """Append one transformer block to ``builder`` and return its output.

    The block follows the pre-norm decoder layout used by GPT/OPT/LLaMA;
    encoder models reuse the same structure (the post-norm difference does
    not change any shape or cost the compiler sees).
    """
    batch = workload.batch_size
    hidden = config.hidden_size
    heads = config.num_heads
    kv_heads = config.kv_heads
    head_dim = config.head_dim
    q_len, kv_len = attention_sequence_lengths(config, workload)
    prefix = f"layer{block_index}"

    def norm(t: TensorSpec, tag: str) -> TensorSpec:
        if config.norm == "rmsnorm":
            return builder.rmsnorm(t, name=f"{prefix}_{tag}")
        return builder.layernorm(t, name=f"{prefix}_{tag}")

    # ---------------- multi-head attention ---------------- #
    normed = norm(x, "attn_norm")
    q = builder.linear(normed, hidden, name=f"{prefix}_q_proj")
    k = builder.linear(normed, config.kv_hidden, name=f"{prefix}_k_proj")
    v = builder.linear(normed, config.kv_hidden, name=f"{prefix}_v_proj")

    q_heads = builder.reshape(q, (batch * heads, q_len, head_dim), name=f"{prefix}_q_heads")

    if workload.phase is Phase.DECODE:
        # The freshly projected K/V cover one token; the rest of the cache
        # is an external input (it was produced by earlier steps and lives
        # in on-chip memory arrays or main memory).
        k_cache = builder.input(
            f"{prefix}_k_cache", (batch * kv_heads, head_dim, kv_len - 1)
        )
        v_cache = builder.input(f"{prefix}_v_cache", (batch * kv_heads, kv_len - 1, head_dim))
        k_new = builder.reshape(k, (batch * kv_heads, head_dim, 1), name=f"{prefix}_k_new")
        v_new = builder.reshape(v, (batch * kv_heads, 1, head_dim), name=f"{prefix}_v_new")
        k_t = builder.concat([k_cache, k_new], axis=2, name=f"{prefix}_k_concat")
        v_full = builder.concat([v_cache, v_new], axis=1, name=f"{prefix}_v_concat")
    else:
        k_t = builder.reshape(k, (batch * kv_heads, head_dim, kv_len), name=f"{prefix}_k_t")
        v_full = builder.reshape(v, (batch * kv_heads, kv_len, head_dim), name=f"{prefix}_v_heads")

    if kv_heads != heads:
        # Grouped-query attention: K/V are shared across query groups.  The
        # score product still spans every query head; model this by viewing
        # the KV tensors at query-head granularity (metadata only).
        k_t = builder.reshape(
            k_t, (batch * kv_heads, head_dim, k_t.shape[-1]), name=f"{prefix}_k_gqa"
        )

    scores = builder.matmul(q_heads, k_t, name=f"{prefix}_qk")
    probs = builder.softmax(scores, name=f"{prefix}_softmax")
    context = builder.matmul(probs, v_full, name=f"{prefix}_sv")
    context_flat = builder.reshape(
        context, (batch, q_len, hidden), name=f"{prefix}_ctx_merge"
    )
    attn_out = builder.linear(context_flat, hidden, name=f"{prefix}_o_proj")
    x = builder.add(x, attn_out, name=f"{prefix}_attn_residual")

    # ---------------- feed-forward network ---------------- #
    normed = norm(x, "ffn_norm")
    if config.gated_ffn:
        gate = builder.linear(normed, config.ffn_hidden, name=f"{prefix}_ffn_gate")
        up = builder.linear(normed, config.ffn_hidden, name=f"{prefix}_ffn_up")
        gate_act = builder.activation(gate, config.activation, name=f"{prefix}_ffn_act")
        fused = builder.mul(gate_act, up, name=f"{prefix}_ffn_gated")
        down = builder.linear(fused, hidden, name=f"{prefix}_ffn_down")
    else:
        inner = builder.linear(normed, config.ffn_hidden, name=f"{prefix}_ffn_fc1")
        inner_act = builder.activation(inner, config.activation, name=f"{prefix}_ffn_act")
        down = builder.linear(inner_act, hidden, name=f"{prefix}_ffn_fc2")
    return builder.add(x, down, name=f"{prefix}_ffn_residual")


def build_transformer_graph(
    config: TransformerConfig,
    workload: Workload,
    blocks: int = 1,
    include_lm_head: bool = False,
    dtype: DataType = DataType.INT8,
) -> Graph:
    """Build a transformer graph for the given workload.

    Args:
        config: Architecture description.
        workload: Batch size, sequence lengths and phase.
        blocks: Number of physical blocks to materialise.  The remaining
            ``num_layers - blocks`` layers are represented through the
            ``block_repeat`` metadata entry (per-block compilation reuse).
        include_lm_head: Whether to append the final norm and LM head /
            classification projection.
        dtype: Activation/weight element type (paper: INT8).

    Returns:
        The constructed, validated graph.  ``graph.metadata`` records the
        configuration, workload and repetition factor.
    """
    if blocks < 1:
        raise ValueError("must build at least one physical block")
    blocks = min(blocks, config.num_layers)
    builder = GraphBuilder(config.name, dtype=dtype)
    q_len, kv_len = attention_sequence_lengths(config, workload)
    x = builder.input("hidden_in", (workload.batch_size, q_len, config.hidden_size))
    for i in range(blocks):
        x = add_transformer_block(builder, config, x, i, workload)
    if include_lm_head:
        x_norm = (
            builder.rmsnorm(x, name="final_norm")
            if config.norm == "rmsnorm"
            else builder.layernorm(x, name="final_norm")
        )
        x = builder.linear(x_norm, config.vocab_size, name="lm_head")
    builder.output(x)
    graph = builder.finish()
    graph.metadata.update(
        {
            "family": "transformer",
            "model": config.name,
            "hidden_size": config.hidden_size,
            "num_layers": config.num_layers,
            "num_heads": config.num_heads,
            "ffn_hidden": config.ffn_hidden,
            "physical_blocks": blocks,
            "block_repeat": config.num_layers / blocks,
            "phase": workload.phase.value,
            "batch_size": workload.batch_size,
            "seq_len": workload.seq_len,
            "kv_len": kv_len,
            "q_len": q_len,
            "output_len": workload.output_len,
            "approx_parameters": config.approx_parameters,
            "includes_lm_head": include_lm_head,
        }
    )
    return graph
