"""End-to-end speedup comparison — Fig. 14 of the paper.

For every benchmark network and batch size, all four compilers (PUMA, OCC,
CIM-MLC, CMSwitch) compile the same workload for the same chip, and the
performance of each is reported normalised to CIM-MLC (the paper's main
baseline).  The paper reports CMSwitch speedups between 1.02x and 2.03x
with a 1.31x geometric mean; the reproduction checks the same *shape*:
CMSwitch is never slower than CIM-MLC, gains are largest for the big
decoder models and smallest for the high-intensity CNNs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.cache import AllocationCache
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from .common import (
    COMPILER_NAMES,
    FIG14_MODELS,
    encode_workload,
    format_table,
    geometric_mean,
    run_model,
    speedup,
)


def run_end_to_end(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = FIG14_MODELS,
    batch_sizes: Sequence[int] = (1, 2, 4, 8),
    seq_len: int = 64,
    compilers: Sequence[str] = COMPILER_NAMES,
    cache: Optional["AllocationCache"] = None,
) -> List[Dict]:
    """Run the Fig. 14 grid and return one row per (model, batch size).

    Each row contains the end-to-end cycles of every compiler, the speedup
    of CMSwitch over each baseline and CMSwitch's memory-array ratio.

    Args:
        cache: Optional shared allocation cache.  One cache across the
            whole grid lets CMSwitch reuse per-segment solves between the
            dual- and fixed-mode passes and across batch sizes that
            produce structurally identical segments.
    """
    hardware = hardware or dynaplasia()
    rows: List[Dict] = []
    for batch_size in batch_sizes:
        for model in models:
            workload = encode_workload(model, batch_size, seq_len)
            results = {
                name: run_model(model, workload, hardware, name, cache=cache)
                for name in compilers
            }
            row: Dict = {
                "model": model,
                "batch_size": batch_size,
                "seq_len": seq_len,
            }
            for name, result in results.items():
                row[f"{name}_cycles"] = result.cycles
            cms = results["cmswitch"]
            for name in compilers:
                if name == "cmswitch":
                    continue
                row[f"speedup_vs_{name}"] = speedup(results[name].cycles, cms.cycles)
            row["memory_array_ratio"] = cms.memory_array_ratio
            rows.append(row)
    return rows


def summarize(rows: Sequence[Dict]) -> Dict[str, float]:
    """Geometric-mean speedups over the whole grid (the red line of Fig. 14)."""
    summary: Dict[str, float] = {}
    for key in ("speedup_vs_cim-mlc", "speedup_vs_puma", "speedup_vs_occ"):
        values = [row[key] for row in rows if key in row]
        if values:
            summary[key] = geometric_mean(values)
            summary[key.replace("speedup", "max_speedup")] = max(values)
    return summary


def render_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the Fig. 14 table plus the geomean summary."""
    columns = [
        "model",
        "batch_size",
        "speedup_vs_puma",
        "speedup_vs_occ",
        "speedup_vs_cim-mlc",
        "memory_array_ratio",
    ]
    table = format_table(rows, columns)
    summary = summarize(rows)
    lines = [table, ""]
    for key, value in sorted(summary.items()):
        lines.append(f"{key}: {value:.3f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print the Fig. 14 reproduction for a reduced grid."""
    rows = run_end_to_end(batch_sizes=(1, 8))
    print(render_report(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
