"""`repro.obs` — unified tracing, metrics and profiling.

One bundle, :class:`Observability`, carries a span :class:`Tracer` and
a :class:`MetricsRegistry` through every subsystem (pipeline, caches,
`CompileService`, DSE, replay).  The default everywhere is
:data:`NULL_OBS`, whose members are constant-time no-ops — code is
instrumented unconditionally and pays (measured) <2% when telemetry is
off.  See ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.clock import Clock, SYSTEM_CLOCK
from .export import (
    chrome_trace_events,
    profile_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
)
from .tracer import NullTracer, NULL_TRACER, Span, SpanHandle, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "NullTracer",
    "NULL_TRACER",
    "Observability",
    "NULL_OBS",
    "Span",
    "SpanHandle",
    "Tracer",
    "chrome_trace_events",
    "profile_report",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
]


@dataclass(frozen=True)
class Observability:
    """A tracer + metrics registry travelling together.

    Frozen so one bundle can be shared across threads and stored on
    option objects without aliasing surprises; the members themselves
    are the mutable collectors.
    """

    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS

    @property
    def enabled(self) -> bool:
        """True when either member actually records."""
        return bool(getattr(self.tracer, "enabled", False)) or bool(
            getattr(self.metrics, "enabled", False)
        )

    @classmethod
    def create(cls, clock: Clock = SYSTEM_CLOCK) -> "Observability":
        """Fresh enabled bundle on ``clock``."""
        return cls(tracer=Tracer(clock=clock), metrics=MetricsRegistry())


NULL_OBS = Observability()
