"""Baseline CIM compilers used in the paper's comparison (Fig. 14).

Each baseline is a configuration of the shared pass pipeline
(:mod:`repro.pipeline`): CIM-MLC is the CMSwitch pipeline with memory
mode pinned off; PUMA and OCC swap in their own segmentation and
allocation passes (:mod:`repro.baselines.passes`) and reuse the rest.
"""

from .base import BaselineCompiler
from .cim_mlc import CIMMLCCompiler
from .occ import OCCCompiler
from .passes import BaselineAllocate, BaselineCodegen, BaselineSegment
from .puma import PUMACompiler

__all__ = [
    "BaselineAllocate",
    "BaselineCodegen",
    "BaselineCompiler",
    "BaselineSegment",
    "CIMMLCCompiler",
    "OCCCompiler",
    "PUMACompiler",
]


def get_compiler(name: str, hardware, **kwargs):
    """Build a compiler (baseline or CMSwitch) by name.

    Args:
        name: One of ``"cmswitch"``, ``"cim-mlc"``, ``"puma"``, ``"occ"``.
        hardware: Hardware abstraction to target.
        **kwargs: Forwarded to the compiler constructor.

    Raises:
        KeyError: If the compiler name is unknown.
    """
    from ..core.compiler import CMSwitchCompiler

    registry = {
        "cmswitch": CMSwitchCompiler,
        "cim-mlc": CIMMLCCompiler,
        "puma": PUMACompiler,
        "occ": OCCCompiler,
    }
    if name not in registry:
        raise KeyError(f"unknown compiler {name!r}; known: {', '.join(sorted(registry))}")
    return registry[name](hardware, **kwargs)
