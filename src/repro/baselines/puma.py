"""PUMA-style baseline compiler (Ankit et al., ASPLOS 2019).

PUMA focuses on **operator duplication and pipeline scheduling**: weights
of consecutive operators are mapped onto the crossbars, spare crossbars
replicate the bottleneck operator, and operators stream through a
pipeline.  Segmentation is a simple greedy packing — operators are added
to the current segment until the chip runs out of arrays — without the
mode-switch- or spill-aware dynamic program of CMSwitch, and every array
stays in compute mode.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.segmentation import FlattenedUnit
from .base import BaselineCompiler


class PUMACompiler(BaselineCompiler):
    """Greedy-packing, duplication + pipelining, all-compute baseline."""

    name = "puma"
    pipelined = True
    duplication = True
    #: Maximum operators per pipeline stage group — the same pipeline-depth
    #: limit the control hardware imposes on every compiler under test.
    max_segment_operators = 8

    def segment_boundaries(self, units: Sequence[FlattenedUnit]) -> List[List[int]]:
        """Pack consecutive operators until the arrays are exhausted."""
        return self._greedy_pack(units, limit=self.max_segment_operators)
