"""Shared segment-allocation cache.

The dominant cost of CMSwitch compilation (Fig. 18 of the paper) is the
per-segment allocation solve: the DP segmentation asks the MILP (or the
greedy engine) for every candidate window, and the fixed-mode fallback
pass repeats the whole exercise.  :class:`AllocationCache` memoises those
solves *across* segmentation runs, compilers and even compile requests:

* the key is **structural** — the hardware fingerprint, the ordered cost
  profiles of the segment's operators (names excluded) and the options
  that influence the solve (engine, pipelining, refinement, memory mode,
  boundary reserve).  Structurally identical segments — the same model
  compiled twice, the repeated projection layers of a transformer block,
  the fixed-mode pass re-solving a window the dual-mode pass already
  solved — hit the same entry;
* entries store allocations positionally, so a hit is re-labelled with
  the requesting segment's operator names and returned as a fresh
  :class:`~repro.core.allocation.AllocationResult` that is bit-identical
  to what a cold solve would produce;
* a fixed-mode (``allow_memory_mode=False``) lookup that misses may fall
  back to the dual-mode entry for the same key when that entry uses no
  memory-mode arrays: the dual-mode optimum then lies inside the
  fixed-mode search space, so reusing it is exact (a *cross-mode hit*);
* the cache is size-bounded (LRU eviction) and thread-safe, so one
  instance can back a whole :class:`~repro.service.CompileService`;
* an optional second tier — a
  :class:`~repro.core.store.DiskCacheStore` — persists entries across
  processes: memory misses fall through to disk, disk hits are promoted
  into memory, and fresh solves are written through, so a cold process
  pointed at a warmed cache directory compiles with zero solver calls;
* an optional third tier — a
  :class:`~repro.serve.remote.RemoteCacheStore` pointed at a
  ``repro cache-server`` — shares entries across *machines*: lookups
  cascade memory → disk → remote, remote hits are promoted into both
  local tiers, and fresh solves are written through to all of them.

Usage::

    cache = AllocationCache(max_entries=4096)
    compiler = CMSwitchCompiler(hardware, cache=cache)
    program = compiler.compile(graph)          # cold: solves and stores
    program = compiler.compile(graph)          # warm: pure cache hits
    print(cache.stats.hit_rate)

    # Cross-process persistence: any process pointed at the same
    # directory warms from the entries every earlier process solved.
    cache = AllocationCache(store=DiskCacheStore("~/.cache/repro-allocs"))
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cost.arithmetic import OperatorProfile
from ..cost.latency import OperatorAllocation
from ..hardware.deha import DualModeHardwareAbstraction
from ..obs.metrics import NULL_METRICS
from .allocation import AllocationResult
from .store import DiskCacheStore

__all__ = [
    "AllocationCache",
    "AllocationCacheKey",
    "CacheEntry",
    "CacheStats",
    "DiskCacheStore",
    "profile_signature",
    "segment_signature",
]


def profile_signature(profile: OperatorProfile) -> Tuple:
    """Structural identity of one operator profile (the name excluded).

    Two operators with the same signature receive identical allocations
    from every engine, so the cache may share their solutions.
    """
    return (
        profile.op_type,
        profile.macs,
        profile.input_elements,
        profile.output_elements,
        profile.weight_elements,
        profile.stationary_elements,
        profile.streamed_input_elements,
        profile.extra_streamed_elements,
        profile.has_static_weight,
        profile.matmul_m,
        profile.matmul_k,
        profile.matmul_n,
    )


def segment_signature(profiles: Mapping[str, OperatorProfile]) -> Tuple[Tuple, ...]:
    """Ordered structural identity of a whole segment."""
    return tuple(profile_signature(profile) for profile in profiles.values())


@dataclass(frozen=True)
class AllocationCacheKey:
    """Cache key of one segment-allocation solve.

    Attributes:
        hardware: :meth:`DualModeHardwareAbstraction.fingerprint` digest.
        segment: Ordered structural signatures of the segment's operators.
        engine: Allocation engine name (``"milp"`` / ``"greedy"``).
        pipelined: Whether the segment latency model pipelines operators.
        refine: Whether duplication refinement ran after the solve.
        allow_memory_mode: Whether memory-mode arrays were permitted.
        reserve_arrays: Arrays withheld from refinement for boundary
            buffering.
    """

    hardware: str
    segment: Tuple[Tuple, ...]
    engine: str
    pipelined: bool
    refine: bool
    allow_memory_mode: bool
    reserve_arrays: int

    @classmethod
    def build(
        cls,
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        *,
        engine: str,
        pipelined: bool,
        refine: bool,
        allow_memory_mode: bool,
        reserve_arrays: int,
    ) -> "AllocationCacheKey":
        """Build the key for one ``allocate_segment`` invocation."""
        return cls(
            hardware=hardware.fingerprint(),
            segment=segment_signature(profiles),
            engine=engine,
            pipelined=pipelined,
            refine=refine,
            allow_memory_mode=allow_memory_mode,
            reserve_arrays=int(reserve_arrays),
        )

    def dual_mode_variant(self) -> "AllocationCacheKey":
        """The same solve with memory mode enabled (cross-mode lookup)."""
        return replace(self, allow_memory_mode=True)


@dataclass(frozen=True)
class CacheEntry:
    """Stored outcome of one solve, with allocations kept positionally.

    This is the unit both cache tiers move around: the in-memory LRU maps
    keys to entries directly, and :class:`~repro.core.store.DiskCacheStore`
    persists the :meth:`to_payload` rendering.  Operator names are *not*
    part of an entry — allocations are positional, so one entry serves
    every structurally identical segment regardless of labels.
    """

    allocations: Tuple[Tuple[int, int], ...]
    latency_cycles: float
    feasible: bool
    solver: str

    @classmethod
    def from_result(
        cls,
        profiles: Mapping[str, OperatorProfile],
        result: AllocationResult,
    ) -> Optional["CacheEntry"]:
        """Build the positional entry for ``result`` solved over ``profiles``.

        Returns None for a feasible result that does not cover every
        profiled operator (a foreign/partial result) — such results must
        never be stored, or a later hit would silently drop operators.
        The single constructor both cache tiers, the per-run memo and
        the solver pool share, so "what is storable" has one definition.
        """
        allocations = tuple(
            (
                result.allocations[name].compute_arrays,
                result.allocations[name].memory_arrays,
            )
            for name in profiles
            if name in result.allocations
        )
        if len(allocations) != len(profiles) and result.feasible:
            return None
        return cls(
            allocations=allocations if result.feasible else tuple(),
            latency_cycles=result.latency_cycles,
            feasible=result.feasible,
            solver=result.solver,
        )

    @property
    def memory_free(self) -> bool:
        """Whether the entry uses no memory-mode arrays anywhere."""
        return all(memory == 0 for _, memory in self.allocations)

    def to_result(self, names: Sequence[str], from_disk: bool = False) -> AllocationResult:
        """Materialise an :class:`AllocationResult` for ``names``.

        ``from_disk`` marks results served by the persistent tier so
        compile statistics can attribute the hit per job.
        """
        allocations = {
            name: OperatorAllocation(compute_arrays=compute, memory_arrays=memory)
            for name, (compute, memory) in zip(names, self.allocations)
        }
        return AllocationResult(
            allocations=allocations,
            latency_cycles=self.latency_cycles,
            feasible=self.feasible,
            solver=self.solver,
            from_cache=True,
            from_disk=from_disk,
        )

    # ------------------------------------------------------------------ #
    # on-disk payload (consumed by DiskCacheStore)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict:
        """JSON-compatible rendering for the persistent store."""
        return {
            "allocations": [list(pair) for pair in self.allocations],
            "latency_cycles": self.latency_cycles,
            "feasible": self.feasible,
            "solver": self.solver,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "CacheEntry":
        """Rebuild an entry from :meth:`to_payload` output.

        Raises:
            TypeError/ValueError/KeyError: On any shape or type mismatch —
                the disk store converts those into a corrupt-entry miss.
        """
        allocations = []
        for pair in payload["allocations"]:
            compute, memory = pair  # raises ValueError on wrong arity
            if isinstance(compute, bool) or isinstance(memory, bool):
                raise TypeError("allocation counts must be integers")
            allocations.append((int(compute), int(memory)))
        latency = payload["latency_cycles"]
        if isinstance(latency, bool) or not isinstance(latency, (int, float)):
            raise TypeError("'latency_cycles' must be a number")
        latency = float(latency)
        feasible = payload["feasible"]
        solver = payload["solver"]
        if not isinstance(feasible, bool):
            raise TypeError("'feasible' must be a boolean")
        if not isinstance(solver, str):
            raise TypeError("'solver' must be a string")
        return cls(
            allocations=tuple(allocations),
            latency_cycles=latency,
            feasible=feasible,
            solver=solver,
        )


#: Backwards-compatible alias (the entry class was private before the
#: disk store needed to serialise it).
_CacheEntry = CacheEntry


@dataclass
class CacheStats:
    """Counters of one :class:`AllocationCache`.

    Attributes:
        hits: Lookups served from the cache (cross-mode, disk and remote
            hits included).
        cross_mode_hits: Fixed-mode lookups served by a memory-free
            dual-mode entry.
        disk_hits: Lookups that missed in memory but were served by the
            persistent second tier (and promoted into memory).
        remote_hits: Lookups that missed both local tiers but were
            served by the networked third tier (and promoted into both
            local tiers).
        misses: Lookups that required a fresh solve.
        stores: Entries written.
        evictions: Entries dropped by the LRU bound.
    """

    hits: int = 0
    cross_mode_hits: int = 0
    disk_hits: int = 0
    remote_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """Independent copy of the counters."""
        return CacheStats(
            hits=self.hits,
            cross_mode_hits=self.cross_mode_hits,
            disk_hits=self.disk_hits,
            remote_hits=self.remote_hits,
            misses=self.misses,
            stores=self.stores,
            evictions=self.evictions,
        )

    def to_dict(self) -> Dict[str, float]:
        """Plain-dictionary rendering for reports and program stats."""
        return {
            "hits": self.hits,
            "cross_mode_hits": self.cross_mode_hits,
            "disk_hits": self.disk_hits,
            "remote_hits": self.remote_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class AllocationCache:
    """Keyed, size-bounded, thread-safe cache of segment-allocation solves.

    Key invariants (callers — the segmenter, :class:`CompileService`, DSE
    sweeps — rely on all of them):

    * **Exactness** — a hit is bit-identical to what a cold solve would
      return for the same key; keys include every option that influences
      the solve, and :meth:`DualModeHardwareAbstraction.fingerprint`
      covers every cost-relevant hardware parameter, so changing any of
      them changes the key (there is no way to get a stale answer by
      tweaking hardware or options).
    * **Thread safety** — all public methods may be called concurrently;
      one instance can back a whole multi-threaded
      :class:`~repro.service.CompileService`.
    * **Process safety** — the in-memory tier is per-process, but with a
      ``store`` attached, entries written by any process become visible
      to every other process sharing the directory (the disk tier is the
      only cross-process channel; see
      :class:`~repro.core.store.DiskCacheStore` for its guarantees).
    * Disk I/O never happens while the in-memory lock is held, so slow
      filesystems cannot serialise concurrent compile threads.

    Args:
        max_entries: LRU capacity of the in-memory tier; the oldest entry
            is evicted when a new store would exceed it.  Must be
            positive.  (Disk-tier capacity is bounded separately by the
            store's ``max_bytes``.)
        store: Optional persistent second tier.  Memory misses fall
            through to it, its hits are promoted into memory, and fresh
            solves are written through to it.
        remote: Optional networked third tier — anything with the
            ``get(key) -> Optional[CacheEntry]`` / ``put(key, entry)``
            shape of :class:`~repro.serve.remote.RemoteCacheStore`.
            Probed only after both local tiers miss; its hits are
            promoted into memory *and* the disk tier, and fresh solves
            are written through to it.  A remote tier must never raise
            from ``get``/``put`` (the remote client maps every network
            or verification failure to a miss), so a dead or poisoned
            cache server degrades to cold compiles, not errors.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`.  Tier
            counters are *mirrored* into it under ``cache.memory.*`` /
            ``cache.disk.*`` / ``cache.remote.*`` names; ``self.stats``
            stays the exact, bit-compatible source of truth either way.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        store: Optional[DiskCacheStore] = None,
        remote: Optional[object] = None,
        metrics: Optional[object] = None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.store = store
        self.remote = remote
        self._entries: "OrderedDict[AllocationCacheKey, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()
        self.metrics = NULL_METRICS if metrics is None else metrics

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # key-level API (what allocate_segment talks to — the key is built
    # once per solve and shared between lookup and store)
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        **options,
    ) -> AllocationCacheKey:
        """Build the cache key for one solve (see
        :meth:`AllocationCacheKey.build` for the options)."""
        return AllocationCacheKey.build(profiles, hardware, **options)

    def lookup(
        self, key: AllocationCacheKey, names: Sequence[str]
    ) -> Optional[AllocationResult]:
        """Return a cached result for ``key``, or None on a miss.

        The lookup cascades through the tiers: exact in-memory entry,
        cross-mode in-memory entry, then (with a ``store`` attached) the
        same two probes against the disk tier, then (with a ``remote``
        attached) against the networked tier — promoting any lower-tier
        hit into every tier above it.  A fixed-mode lookup's cross-mode
        probe reuses the dual-mode entry of the same key only when that
        entry allocates no memory-mode arrays (then it lies inside the
        fixed-mode space and is exact for it).  ``names`` labels the
        returned allocations.
        """
        with self._lock:
            entry, hit_key, cross_mode = self._memory_probe(key)
            if entry is not None:
                self._entries.move_to_end(hit_key)
                self.stats.hits += 1
                if cross_mode:
                    self.stats.cross_mode_hits += 1
                self.metrics.inc("cache.memory.hits")
                return entry.to_result(names)
        if self.store is not None:
            # Disk probes run outside the lock: a slow filesystem must not
            # serialise the compile threads sharing this cache.
            entry, hit_key, cross_mode = self._disk_probe(key)
            if entry is not None:
                with self._lock:
                    self._insert(hit_key, entry)
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    if cross_mode:
                        self.stats.cross_mode_hits += 1
                self.metrics.inc("cache.disk.hits")
                return entry.to_result(names, from_disk=True)
        if self.remote is not None:
            # Remote probes also run outside the lock — a slow or dead
            # network must not serialise the compile threads either.
            entry, hit_key, cross_mode = self._remote_probe(key)
            if entry is not None:
                with self._lock:
                    self._insert(hit_key, entry)
                    self.stats.hits += 1
                    self.stats.remote_hits += 1
                    if cross_mode:
                        self.stats.cross_mode_hits += 1
                self.metrics.inc("cache.remote.hits")
                if self.store is not None:
                    # Promote into the disk tier too: the *next* process
                    # on this machine should not need the network.
                    self.store.put(hit_key, entry)
                # from_disk marks the hit as served by a persistent tier,
                # so per-job statistics count it exactly like a disk hit.
                return entry.to_result(names, from_disk=True)
        with self._lock:
            self.stats.misses += 1
        self.metrics.inc("cache.misses")
        return None

    def _memory_probe(
        self, key: AllocationCacheKey
    ) -> Tuple[Optional[CacheEntry], AllocationCacheKey, bool]:
        """Exact + cross-mode probe of the in-memory tier (lock held)."""
        entry = self._entries.get(key)
        if entry is not None:
            return entry, key, False
        if not key.allow_memory_mode:
            dual_key = key.dual_mode_variant()
            dual_entry = self._entries.get(dual_key)
            if dual_entry is not None and dual_entry.memory_free:
                return dual_entry, dual_key, True
        return None, key, False

    def _disk_probe(
        self, key: AllocationCacheKey
    ) -> Tuple[Optional[CacheEntry], AllocationCacheKey, bool]:
        """Exact + cross-mode probe of the persistent tier (no lock)."""
        entry = self.store.get(key)
        if entry is not None:
            return entry, key, False
        if not key.allow_memory_mode:
            dual_key = key.dual_mode_variant()
            dual_entry = self.store.get(dual_key)
            if dual_entry is not None and dual_entry.memory_free:
                return dual_entry, dual_key, True
        return None, key, False

    def _remote_probe(
        self, key: AllocationCacheKey
    ) -> Tuple[Optional[CacheEntry], AllocationCacheKey, bool]:
        """Exact + cross-mode probe of the networked tier (no lock)."""
        entry = self.remote.get(key)
        if entry is not None:
            return entry, key, False
        if not key.allow_memory_mode:
            dual_key = key.dual_mode_variant()
            dual_entry = self.remote.get(dual_key)
            if dual_entry is not None and dual_entry.memory_free:
                return dual_entry, dual_key, True
        return None, key, False

    def _insert(self, key: AllocationCacheKey, entry: CacheEntry) -> None:
        """Insert into the in-memory LRU, evicting past capacity (lock held)."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def put(
        self,
        key: AllocationCacheKey,
        profiles: Mapping[str, OperatorProfile],
        result: AllocationResult,
    ) -> None:
        """Store the outcome of a fresh solve under ``key``.

        The entry lands in the in-memory tier immediately and is written
        through to the persistent and networked tiers (when attached)
        outside the lock.
        """
        entry = CacheEntry.from_result(profiles, result)
        if entry is None:
            return  # partial allocation (foreign result); never cache it
        with self._lock:
            self._insert(key, entry)
            self.stats.stores += 1
        self.metrics.inc("cache.stores")
        if self.store is not None:
            self.store.put(key, entry)
        if self.remote is not None:
            self.remote.put(key, entry)

    # ------------------------------------------------------------------ #
    # segment-level convenience wrappers
    # ------------------------------------------------------------------ #
    def lookup_segment(
        self,
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        **options,
    ) -> Optional[AllocationResult]:
        """One-shot :meth:`make_key` + :meth:`lookup`."""
        return self.lookup(self.make_key(profiles, hardware, **options), list(profiles))

    def store_segment(
        self,
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        result: AllocationResult,
        **options,
    ) -> None:
        """One-shot :meth:`make_key` + :meth:`put`."""
        self.put(self.make_key(profiles, hardware, **options), profiles, result)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every in-memory entry (counters and the disk tier are kept)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the counters (entries are kept)."""
        with self._lock:
            self.stats = CacheStats()
