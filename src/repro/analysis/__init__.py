"""Motivation analyses: arithmetic intensity and mode-ratio sweeps."""

from .intensity import (
    LayerIntensity,
    intensity_vs_sequence_length,
    layerwise_intensity,
    model_arithmetic_intensity,
    model_intensity_comparison,
    stage_of,
    transformer_stage_intensity,
)
from .sweep import (
    ModeRatioSweep,
    compiled_array_sweep,
    mode_allocation_heatmap,
    mode_ratio_sweep,
)

__all__ = [
    "LayerIntensity",
    "ModeRatioSweep",
    "compiled_array_sweep",
    "intensity_vs_sequence_length",
    "layerwise_intensity",
    "mode_allocation_heatmap",
    "mode_ratio_sweep",
    "model_arithmetic_intensity",
    "model_intensity_comparison",
    "stage_of",
    "transformer_stage_intensity",
]
