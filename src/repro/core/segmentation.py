"""Dual-mode-aware network segmentation (§4.3.1, Algorithm 1).

The topologically sorted CIM-mappable operators ``O_1 ... O_m`` are cut
into consecutive segments.  Operators whose stationary operand exceeds the
whole chip are first partitioned greedily into sub-operators that fit
(the "Flatten(G)" step).  A dynamic program then chooses the segment
boundaries minimising

    L[j] = min_i { L[i-1] + T_intra(i, j) + T_inter(i-1, i) }        (Eq. 3)

where ``T_intra`` comes from the per-segment allocator and ``T_inter`` is
the write-back + mode-switch + weight-reload overhead (Eq. 4).  The DP
memoises per-segment allocations so every candidate segment is solved at
most once.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cost.arithmetic import OperatorProfile, ProfileVectors, profile_operator
from ..cost.latency import INFEASIBLE_LATENCY, guard_infeasible
from ..cost.switching import (
    SegmentResources,
    aggregate_resources,
    inter_segment_breakdown,
    inter_segment_cycles,
)
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph
from ..ir.transforms import fuse_auxiliary_traffic, partition_operator
from .allocation import (
    AllocationResult,
    GreedyAllocator,
    MIPAllocator,
    allocate_segment,
)
from .feasibility import FeasibilityModel
from ..obs import NULL_OBS
from .program import SegmentPlan


class NoFeasiblePlanError(RuntimeError):
    """No feasible execution plan exists for a non-empty graph.

    Raised by the segmenter when a required segment cannot be mapped
    onto the chip (and no fallback applies), and by
    :class:`~repro.core.compiler.CMSwitchCompiler` when both the
    dual-mode and the fixed-mode pass carry infinite cost.  Subclasses
    :class:`RuntimeError`, so historical ``except RuntimeError`` callers
    keep working.  Infeasibility is a legitimate outcome at a
    design-space boundary — batch and DSE consumers classify it
    separately from genuine failures.

    Attributes:
        stats: Compile statistics accumulated before the failure
            (allocator solves, cache/disk hits, wall time) — the solver
            work was real even though no program exists, and batch/DSE
            accounting must not under-report it.
    """

    def __init__(self, message: str, stats: Optional[dict] = None) -> None:
        super().__init__(message)
        self.stats = dict(stats or {})


@dataclass
class SegmentationOptions:
    """Knobs of the segmentation pass.

    Attributes:
        max_segment_operators: Upper bound on operators per segment (the
            DP window).  Bounds compilation time; the chip's capacity also
            limits segments naturally.
        pipelined: Whether operators inside a segment execute as a
            pipeline (Eq. 9) or serially.
        include_switch_cost: Whether the DP charges the Eq. 1 mode-switch
            latency (the switch-cost-awareness ablation turns this off).
        allow_memory_mode: Whether operators may receive memory-mode
            arrays; the all-compute baselines set this to False.
        use_milp: Use the MILP allocator (True) or the greedy one (False).
        refine: Apply the post-allocation duplication refinement.
        single_segment_fallback: If True and the DP finds no feasible
            plan, fall back to one segment per operator.
    """

    max_segment_operators: int = 8
    pipelined: bool = True
    include_switch_cost: bool = True
    allow_memory_mode: bool = True
    use_milp: bool = True
    refine: bool = True
    single_segment_fallback: bool = True
    #: Optional per-run :class:`~repro.core.memo.SolveMemo` shared by
    #: every segmenter of one run (DSE sweep, compile batch).  Runtime
    #: state, not configuration — excluded from equality and repr so
    #: option signatures and comparisons stay purely declarative.
    solve_memo: Optional[object] = field(default=None, compare=False, repr=False)
    #: Optional :class:`~repro.obs.Observability` bundle.  Runtime state
    #: like ``solve_memo``: the segmenter emits one span per fresh
    #: allocator solve and mirrors tier counters into the metrics
    #: registry.  Excluded from equality/repr for the same reason.
    obs: Optional[object] = field(default=None, compare=False, repr=False)
    #: Optional :class:`~repro.core.solverpool.SolverPool`.  Runtime
    #: state like ``solve_memo``: when present, the DP dispatches each
    #: wavefront's candidate windows to the pool as a batch instead of
    #: solving them inline.  Excluded from equality/repr likewise.
    solver_pool: Optional[object] = field(default=None, compare=False, repr=False)
    #: Opt-in lookahead dispatch: windows of *future* DP wavefronts are
    #: pre-submitted to the pool before their predecessor costs are
    #: known.  Results and fingerprints stay identical (the DP consumes
    #: only valid windows and every solve is deterministic), but solve
    #: counts may exceed the sequential DP's — the surplus is reported
    #: as ``speculative_waste``.  Strict mode (the default, False) keeps
    #: counts bit-identical.
    speculative: bool = False

    def __post_init__(self) -> None:
        validate_window(self.max_segment_operators)

    def build_allocator(self):
        """Instantiate the configured per-segment allocation engine."""
        if self.use_milp:
            return MIPAllocator(allow_memory_mode=self.allow_memory_mode)
        return GreedyAllocator(allow_memory_mode=self.allow_memory_mode)


def validate_window(max_segment_operators) -> None:
    """Validate a DP-window size at option-construction time.

    The window bounds both compile time and segment length; a
    non-integer or non-positive value used to surface only deep inside
    the DP (a ``TypeError`` from ``range``, or an empty DP that looks
    like infeasibility).  Raising here turns a mis-typed option into an
    immediate, named error.

    Raises:
        ValueError: If the value is not an ``int`` >= 1.
    """
    if isinstance(max_segment_operators, bool) or not isinstance(
        max_segment_operators, int
    ):
        raise ValueError(
            f"max_segment_operators must be an int >= 1, got "
            f"{max_segment_operators!r}"
        )
    if max_segment_operators < 1:
        raise ValueError(
            f"max_segment_operators must be >= 1, got {max_segment_operators}"
        )


@dataclass
class FlattenedUnit:
    """One schedulable unit after flattening (an operator or a shard).

    Attributes:
        name: Unit name (shard names carry a ``::partK`` suffix).
        parent: Name of the original graph operator.
        profile: Cost profile of the unit.
        index: Position in the flattened order.
        live_until: Index of the last unit that consumes this unit's
            output (used for the inter-segment write-back volume).
    """

    name: str
    parent: str
    profile: OperatorProfile
    index: int
    live_until: int


@dataclass
class ProfiledOperator:
    """One CIM-mappable operator after profiling, before partitioning.

    The intermediate product between the pipeline's ``Flatten`` pass
    (profile every mappable operator, fold auxiliary traffic in) and its
    ``PartitionOversized`` pass (shard the operators whose stationary
    operand exceeds the chip).

    Attributes:
        operator: The IR operator.
        profile: Its cost profile with auxiliary traffic folded in.
        extra_streamed: Auxiliary traffic attributed to this operator
            (re-spread over shards when the operator is partitioned).
        oversized: Whether the operator's minimum compute footprint
            exceeds the whole chip and it must be partitioned.
    """

    operator: object
    profile: OperatorProfile
    extra_streamed: int
    oversized: bool


def profile_graph(
    graph: Graph, hardware: DualModeHardwareAbstraction
) -> List[ProfiledOperator]:
    """Profile the CIM-mappable operators (the pipeline's Flatten step).

    Auxiliary-operator traffic is folded into the nearest mappable
    neighbour and each operator is marked oversized when its minimum
    compute footprint exceeds the chip.
    """
    extra_traffic = fuse_auxiliary_traffic(graph)
    profiled: List[ProfiledOperator] = []
    for op in graph.cim_operators():
        extra = extra_traffic.get(op.name, 0)
        profile = profile_operator(op, extra)
        profiled.append(
            ProfiledOperator(
                operator=op,
                profile=profile,
                extra_streamed=extra,
                oversized=profile.min_compute_arrays(hardware) > hardware.num_arrays,
            )
        )
    return profiled


def expand_profiled(
    profiled: Sequence[ProfiledOperator], hardware: DualModeHardwareAbstraction
) -> List[Tuple[str, str, OperatorProfile]]:
    """Shard oversized operators (the pipeline's PartitionOversized step).

    Operators that fit pass through unchanged; an oversized operator is
    split by :func:`repro.ir.transforms.partition_operator` with the chip
    capacity as the budget — the paper's greedy partitioning "determined
    by the available on-chip resources".

    Returns:
        ``(name, parent, profile)`` triples in flattened order (shard
        names carry a ``::partK`` suffix; ``parent`` is the original
        operator's name).
    """
    chip_capacity = hardware.num_arrays * hardware.array_capacity_elements
    expanded: List[Tuple[str, str, OperatorProfile]] = []
    for item in profiled:
        op = item.operator
        if not item.oversized:
            expanded.append((op.name, op.name, item.profile))
            continue
        shards = partition_operator(
            op, chip_capacity, hardware.array_rows, hardware.array_cols
        )
        extra_per_shard = item.extra_streamed // len(shards)
        for shard in shards:
            shard_profile = profile_operator(shard.operator, extra_per_shard)
            expanded.append((shard.operator.name, op.name, shard_profile))
    return expanded


def assign_liveness(
    graph: Graph, expanded: Sequence[Tuple[str, str, OperatorProfile]]
) -> List[FlattenedUnit]:
    """Attach liveness to expanded units (completes the flattening).

    A unit's output is live until its last consumer.  Consumers are
    derived from the parent graph's dependency relation; units whose
    parents feed graph outputs (or only auxiliary operators) stay live
    to the very end.
    """
    position_of_parent_first: Dict[str, int] = {}
    position_of_parent_last: Dict[str, int] = {}
    for idx, (_, parent, _) in enumerate(expanded):
        position_of_parent_first.setdefault(parent, idx)
        position_of_parent_last[parent] = idx

    cim_names = {op.name for op in graph.cim_operators()}
    consumers_of: Dict[str, List[int]] = {name: [] for name in cim_names}
    for producer, consumer in _mappable_dependencies(graph, cim_names):
        if consumer in position_of_parent_first:
            consumers_of[producer].append(position_of_parent_first[consumer])

    last_index = len(expanded) - 1
    units: List[FlattenedUnit] = []
    for idx, (name, parent, profile) in enumerate(expanded):
        if idx < position_of_parent_last[parent]:
            # Intermediate shard: its partial output feeds the next shard.
            live_until = idx + 1
        else:
            consumer_positions = consumers_of.get(parent, [])
            if consumer_positions:
                live_until = max(consumer_positions)
            else:
                # Feeds the graph output (or only auxiliary tails).
                live_until = last_index
        units.append(
            FlattenedUnit(name=name, parent=parent, profile=profile, index=idx, live_until=live_until)
        )
    return units


def flatten_graph(
    graph: Graph, hardware: DualModeHardwareAbstraction
) -> List[FlattenedUnit]:
    """Flatten a graph into schedulable units that each fit on the chip.

    The composition of the three flattening steps the pipeline runs as
    named passes: :func:`profile_graph` (profile + auxiliary-traffic
    fusion), :func:`expand_profiled` (shard oversized operators) and
    :func:`assign_liveness`.
    """
    return assign_liveness(
        graph, expand_profiled(profile_graph(graph, hardware), hardware)
    )


def _mappable_dependencies(graph: Graph, cim_names: set) -> List[Tuple[str, str]]:
    """Dependency pairs between CIM-mappable operators.

    Auxiliary operators between two mappable operators are collapsed: if a
    path of non-mappable operators connects ``A`` to ``B``, the pair
    ``(A, B)`` is reported.
    """
    pairs: List[Tuple[str, str]] = []
    for op in graph.topological_order():
        if op.name not in cim_names:
            continue
        frontier = graph.successors(op)
        visited = set()
        while frontier:
            next_frontier = []
            for succ in frontier:
                if succ.name in visited:
                    continue
                visited.add(succ.name)
                if succ.name in cim_names:
                    pairs.append((op.name, succ.name))
                else:
                    next_frontier.extend(graph.successors(succ))
            frontier = next_frontier
    return pairs


def live_elements_at_boundary(units: Sequence[FlattenedUnit], boundary: int) -> int:
    """Elements produced at or before ``boundary`` still needed after it.

    ``boundary`` is the index of the last unit of the earlier segment.
    """
    total = 0
    for unit in units[: boundary + 1]:
        if unit.live_until > boundary:
            total += unit.profile.output_elements
    return total


def live_elements_vector(units: Sequence[FlattenedUnit]) -> np.ndarray:
    """:func:`live_elements_at_boundary` at every boundary, in one sweep.

    Unit ``idx`` contributes its output elements to every boundary ``b``
    with ``idx <= b < live_until``, so a difference array plus one
    cumulative sum yields all ``m`` boundary values in O(m) — the DP
    used to recompute each from scratch, O(m) per lookup.  Integer
    arithmetic throughout, so every entry equals the scalar helper
    exactly.
    """
    m = len(units)
    diff = np.zeros(m + 1, dtype=np.int64)
    for idx, unit in enumerate(units):
        if unit.live_until > idx:
            elements = unit.profile.output_elements
            diff[idx] += elements
            diff[unit.live_until] -= elements
    return np.cumsum(diff)[:m]


def window_cache_key(
    units: Sequence[FlattenedUnit],
    hardware: DualModeHardwareAbstraction,
    options,
    start: int = 0,
    end: Optional[int] = None,
):
    """Cache key of the allocation window ``units[start..end]`` (inclusive).

    Mirrors :meth:`NetworkSegmenter._allocate` for that window under the
    pass ``options`` selects: same engine name, pipelining, refinement,
    memory-mode flag and boundary reserve (derived from the live data at
    boundary ``end``, zero for the final boundary).  A persistent store
    holding this key has solved this exact sub-problem before.

    Args:
        units: Flattened schedulable units of the graph.
        hardware: Target hardware abstraction.
        options: Any object with ``use_milp`` / ``pipelined`` /
            ``refine`` / ``allow_memory_mode`` attributes
            (:class:`~repro.core.compiler.CompilerOptions` or
            :class:`SegmentationOptions`).
        start / end: Inclusive window bounds; ``end`` defaults to
            ``start`` (a one-operator window).

    Returns:
        The :class:`~repro.core.cache.AllocationCacheKey`, or ``None``
        for an empty window (nothing to allocate, nothing to probe).
    """
    from .cache import AllocationCacheKey

    if end is None:
        end = start
    if not units or start < 0 or end >= len(units) or end < start:
        return None
    profiles = {unit.name: unit.profile for unit in units[start : end + 1]}
    reserve = 0
    if options.allow_memory_mode and end + 1 < len(units):
        live = live_elements_at_boundary(units, end)
        if live > 0:
            capacity = hardware.array_capacity_elements
            need = -(-live // capacity)
            reserve = min(need, hardware.num_arrays // 2)
    return AllocationCacheKey.build(
        profiles,
        hardware,
        engine="milp" if options.use_milp else "greedy",
        pipelined=options.pipelined,
        refine=options.refine,
        allow_memory_mode=options.allow_memory_mode,
        reserve_arrays=reserve,
    )


def first_window_cache_key(
    units: Sequence[FlattenedUnit],
    hardware: DualModeHardwareAbstraction,
    options,
):
    """Cache key of the first allocation window the DP will request.

    The ``units[0:1]`` special case of :func:`window_cache_key`.  If
    this key is present in a persistent store, the run that produced it
    solved this exact sub-problem before — the strongest cheap signal
    that the whole candidate is warm.  Shared by the DSE planner's
    warm-first scheduling and the cached evaluation tier's ``contains``
    probe.
    """
    return window_cache_key(units, hardware, options, start=0, end=0)


@dataclass
class SegmentationResult:
    """Output of the DP: segment plans plus bookkeeping for reports.

    Attributes:
        segments: Segment plans in execution order.
        units: The flattened schedulable units.
        dp_seconds: Wall-clock time of the DP (allocations included).
        allocation_calls: Fresh allocator solves performed.
        cache_hits: Solves served from the shared allocation cache.
        disk_hits: Subset of ``cache_hits`` served by the cache's
            persistent disk tier (warm-start visibility per compile).
        speculative_waste: Solves dispatched by speculative lookahead
            that the DP never consumed (always 0 in strict mode).
    """

    segments: List[SegmentPlan]
    units: List[FlattenedUnit]
    dp_seconds: float
    allocation_calls: int
    cache_hits: int = 0
    disk_hits: int = 0
    speculative_waste: int = 0

    @property
    def total_cycles(self) -> float:
        """Total predicted latency of the segmented schedule."""
        return sum(segment.total_cycles for segment in self.segments)


def plan_cost(result: SegmentationResult) -> float:
    """Comparable cost of a segmentation plan (NaN collapsed to ``inf``)."""
    return guard_infeasible(result.total_cycles)


def plan_arrays(result: SegmentationResult) -> int:
    """Total arrays (compute + memory + boundary) a plan occupies."""
    return sum(
        segment.compute_arrays + segment.memory_arrays for segment in result.segments
    )


def choose_plan(
    dual: SegmentationResult, fixed: SegmentationResult
) -> Tuple[SegmentationResult, bool]:
    """Pick between the dual-mode plan and the fixed-mode fallback plan.

    The comparison is robust to :data:`INFEASIBLE_LATENCY` and NaN costs:

    * if both plans are infeasible the dual-mode plan is returned (the
      caller raises :class:`NoFeasiblePlanError`) — never a silent
      ``inf < inf`` keep;
    * a strictly cheaper fixed-mode plan wins;
    * on an exact finite tie the fixed-mode plan wins only when it
      occupies fewer arrays (same latency for less hardware).

    Returns:
        ``(chosen_result, fallback_used)``.
    """
    dual_cost = plan_cost(dual)
    fixed_cost = plan_cost(fixed)
    if fixed_cost < dual_cost:
        return fixed, True
    if fixed_cost == dual_cost and math.isfinite(fixed_cost):
        if plan_arrays(fixed) < plan_arrays(dual):
            return fixed, True
    return dual, False


class NetworkSegmenter:
    """Runs the Eq. 3 dynamic program over a flattened operator list."""

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        options: Optional[SegmentationOptions] = None,
        cache: Optional[object] = None,
    ) -> None:
        """Args:
            hardware: Target hardware abstraction.
            options: Segmentation knobs (paper defaults when omitted).
            cache: Optional shared
                :class:`~repro.core.cache.AllocationCache`.  The per-run
                window memo below always applies; the shared cache
                additionally reuses solves across runs (the fixed-mode
                fallback pass, repeated compiles, other threads).
        """
        self.hardware = hardware
        self.options = options or SegmentationOptions()
        self._allocator = self.options.build_allocator()
        self._feasibility = FeasibilityModel(hardware)
        self._allocation_cache: Dict[Tuple[int, int], AllocationResult] = {}
        self._shared_cache = cache
        self._solve_memo = getattr(self.options, "solve_memo", None)
        self._solver_pool = getattr(self.options, "solver_pool", None)
        obs = getattr(self.options, "obs", None)
        self._tracer = obs.tracer if obs is not None else NULL_OBS.tracer
        self._metrics = obs.metrics if obs is not None else NULL_OBS.metrics
        # Per-unit-list precomputation (one segmenter serves exactly one
        # unit list, like ``_allocation_cache`` already assumes).
        self._vectors: Optional[ProfileVectors] = None
        self._liveness: Optional[np.ndarray] = None
        self._reserves: Optional[np.ndarray] = None
        self._profile_windows: Dict[Tuple[int, int], Dict[str, OperatorProfile]] = {}
        self.allocation_calls = 0
        self.cache_hits = 0
        self.disk_hits = 0
        self.speculative_waste = 0

    # ------------------------------------------------------------------ #
    # per-run precomputation
    # ------------------------------------------------------------------ #
    def _prepare(self, units: Sequence[FlattenedUnit]) -> None:
        """Precompute the DP's window aggregates as arrays (idempotent).

        One pass over the units yields everything the DP loop needs per
        cell in O(1): the struct-of-arrays profile view (static-weight
        and compute-floor prefix sums), the live elements at every
        boundary, and the boundary buffer reserve each window end
        implies.  All of it is integer arithmetic identical to the
        scalar helpers it replaces.
        """
        if self._vectors is not None or not units:
            return
        self._vectors = ProfileVectors(
            [unit.profile for unit in units], self.hardware
        )
        self._liveness = live_elements_vector(units)
        m = len(units)
        if self.options.allow_memory_mode and m > 1:
            capacity = self.hardware.array_capacity_elements
            need = -(-self._liveness // capacity)  # ceil div, int64
            reserves = np.minimum(need, self.hardware.num_arrays // 2)
            reserves[self._liveness <= 0] = 0
            reserves[m - 1] = 0  # the final boundary buffers nothing
        else:
            reserves = np.zeros(m, dtype=np.int64)
        self._reserves = reserves

    # ------------------------------------------------------------------ #
    # allocation memoisation
    # ------------------------------------------------------------------ #
    def _segment_profiles(
        self, units: Sequence[FlattenedUnit], start: int, end: int
    ) -> Dict[str, OperatorProfile]:
        window = self._profile_windows.get((start, end))
        if window is None:
            window = {unit.name: unit.profile for unit in units[start : end + 1]}
            self._profile_windows[(start, end)] = window
        return window

    def _window_fits(self, units: Sequence[FlattenedUnit], start: int, end: int) -> bool:
        """O(1) window feasibility from the precomputed floor prefix."""
        if self._vectors is not None:
            return (
                self._vectors.window_minimum_compute_arrays(start, end)
                <= self.hardware.num_arrays
            )
        return self._feasibility.segment_fits(self._segment_profiles(units, start, end))

    def _allocate(self, units: Sequence[FlattenedUnit], start: int, end: int) -> AllocationResult:
        key = (start, end)
        if key not in self._allocation_cache:
            if not self._window_fits(units, start, end):
                result = AllocationResult({}, INFEASIBLE_LATENCY, False, "infeasible")
            else:
                with self._tracer.span("allocator.solve", start=start, end=end) as span:
                    result = allocate_segment(
                        self._segment_profiles(units, start, end),
                        self.hardware,
                        allocator=self._allocator,
                        pipelined=self.options.pipelined,
                        refine=self.options.refine,
                        reserve_arrays=self._boundary_reserve(units, end),
                        cache=self._shared_cache,
                        memo=self._solve_memo,
                    )
                    span.set(solver=result.solver, cached=result.from_cache)
                self._record_result(result)
            self._allocation_cache[key] = result
        return self._allocation_cache[key]

    def _record_result(self, result: AllocationResult) -> None:
        """Advance the solve/hit counters for one consumed allocation.

        Shared by the inline path and the solver-pool path; consuming
        pool tickets in the sequential probe order therefore produces
        the identical counter sequence.
        """
        if result.from_cache:
            self.cache_hits += 1
            if result.from_disk:
                self.disk_hits += 1
                self._metrics.inc("allocator.hits.disk")
            else:
                self._metrics.inc("allocator.hits.memory")
        else:
            self.allocation_calls += 1
            self._metrics.inc("allocator.solves")
            self._metrics.inc(f"allocator.solves.{result.solver}")

    # ------------------------------------------------------------------ #
    # solver-pool dispatch (the parallel wavefront)
    # ------------------------------------------------------------------ #
    def _dispatch_window(
        self,
        units: Sequence[FlattenedUnit],
        start: int,
        end: int,
        pending: Dict[Tuple[int, int], object],
        parent_span: Optional[int],
    ) -> None:
        """Submit window ``[start, end]`` to the pool (at most once).

        Unfit windows are settled inline without a pool round-trip —
        the same short-circuit the sequential path takes, so they never
        touch tiers or counters.
        """
        from .solverpool import WindowSolve

        key = (start, end)
        if key in self._allocation_cache or key in pending:
            return
        if not self._window_fits(units, start, end):
            self._allocation_cache[key] = AllocationResult(
                {}, INFEASIBLE_LATENCY, False, "infeasible"
            )
            return
        pending[key] = self._solver_pool.submit(
            WindowSolve(
                profiles=self._segment_profiles(units, start, end),
                hardware=self.hardware,
                allocator=self._allocator,
                pipelined=self.options.pipelined,
                refine=self.options.refine,
                reserve_arrays=self._boundary_reserve(units, end),
                cache=self._shared_cache,
                memo=self._solve_memo,
                tracer=self._tracer,
                parent_span=parent_span,
                attrs={"start": start, "end": end},
            )
        )

    def _settle_window(
        self,
        start: int,
        end: int,
        pending: Dict[Tuple[int, int], object],
    ) -> AllocationResult:
        """Consume the pool ticket for window ``[start, end]``.

        A solve that raised inside a worker loses only this window: it
        settles as infeasible (solver tag ``"failed"``), the DP simply
        skips the edge, and the pool itself keeps serving.
        """
        key = (start, end)
        cached = self._allocation_cache.get(key)
        if cached is not None:
            return cached
        ticket = pending.pop(key)
        try:
            result = ticket.result()
        except Exception:
            result = AllocationResult({}, INFEASIBLE_LATENCY, False, "failed")
        else:
            self._record_result(result)
        self._allocation_cache[key] = result
        return result

    def _stats_payload(self) -> Dict[str, float]:
        """Solver counters for a :class:`NoFeasiblePlanError` — the work
        done before an infeasibility still has to be accounted for."""
        attempts = self.allocation_calls + self.cache_hits
        return {
            "allocator_solves": self.allocation_calls,
            "allocation_cache_hits": self.cache_hits,
            "allocation_disk_hits": self.disk_hits,
            "allocation_cache_hit_rate": (
                self.cache_hits / attempts if attempts else 0.0
            ),
        }

    def _boundary_reserve(self, units: Sequence[FlattenedUnit], end: int) -> int:
        """Arrays withheld from duplication to buffer live boundary data.

        A dual-mode compiler keeps a segment's live outputs in memory-mode
        arrays rather than spilling them off chip, so the duplication
        refinement must not consume the arrays that buffering needs.  At
        most half the chip is reserved; fixed-mode baselines reserve none.
        """
        if self._reserves is not None:
            return int(self._reserves[end])
        if not self.options.allow_memory_mode or end + 1 >= len(units):
            return 0
        live = live_elements_at_boundary(units, end)
        if live <= 0:
            return 0
        need = -(-live // self.hardware.array_capacity_elements)
        return min(need, self.hardware.num_arrays // 2)

    # ------------------------------------------------------------------ #
    # dynamic program
    # ------------------------------------------------------------------ #
    def segment(
        self, graph: Graph, units: Optional[Sequence[FlattenedUnit]] = None
    ) -> SegmentationResult:
        """Segment a graph and allocate every segment (Algorithm 1).

        Args:
            graph: The computation graph.
            units: Pre-flattened schedulable units; flattening is
                deterministic and option-independent, so callers that
                already flattened (the pipeline's earlier passes, the
                fixed-mode fallback reusing the dual-mode pass's units)
                may pass them to skip the repeated work.
        """
        start_time = time.perf_counter()
        if units is None:
            units = flatten_graph(graph, self.hardware)
        units = list(units)
        if not units:
            return SegmentationResult([], [], 0.0, 0, 0)
        boundaries = self.choose_boundaries(graph, units)
        segments = self.build_plans(units, boundaries)
        dp_seconds = time.perf_counter() - start_time
        return SegmentationResult(
            segments,
            units,
            dp_seconds,
            self.allocation_calls,
            self.cache_hits,
            self.disk_hits,
            self.speculative_waste,
        )

    def choose_boundaries(
        self, graph: Graph, units: Sequence[FlattenedUnit]
    ) -> List[Tuple[int, int]]:
        """Run the Eq. 3 DP and return the chosen segment boundaries.

        Returns ``(start, end)`` inclusive index pairs in execution
        order.  When the DP proves no feasible plan exists, falls back
        to one segment per unit (``single_segment_fallback``) or raises
        :class:`NoFeasiblePlanError`.  The per-window allocation solves
        the DP performs stay memoised on this segmenter, so a subsequent
        :meth:`build_plans` call re-pays nothing.
        """
        m = len(units)
        window = max(1, self.options.max_segment_operators)
        self._prepare(units)

        # DP tables: best cost to schedule units[0..j-1]; predecessor
        # boundary; allocation and resources of the last segment of the
        # best plan ending at j.
        best_cost = [INFEASIBLE_LATENCY] * (m + 1)
        best_cost[0] = 0.0
        predecessor = [-1] * (m + 1)
        last_resources: List[Optional[SegmentResources]] = [None] * (m + 1)
        last_allocation: List[Optional[AllocationResult]] = [None] * (m + 1)

        tables = (best_cost, predecessor, last_resources, last_allocation)
        if self._solver_pool is not None:
            self._run_dp_parallel(units, m, window, tables)
        else:
            for j in range(1, m + 1):
                lo = max(0, j - window)
                live = int(self._liveness[j - 1]) if j < m else 0
                for i in range(lo, j):
                    if best_cost[i] == INFEASIBLE_LATENCY:
                        continue
                    allocation = self._allocate(units, i, j - 1)
                    self._dp_edge(units, i, j, live, allocation, tables)

        if best_cost[m] == INFEASIBLE_LATENCY:
            if not self.options.single_segment_fallback:
                raise NoFeasiblePlanError(
                    f"no feasible segmentation found for graph {graph.name!r} "
                    f"on {self.hardware.name!r}",
                    stats=self._stats_payload(),
                )
            # One segment per unit — used only when the DP finds no plan.
            return [(i, i) for i in range(m)]

        # Backtrack the boundaries.
        boundaries: List[Tuple[int, int]] = []
        j = m
        while j > 0:
            i = predecessor[j]
            boundaries.append((i, j - 1))
            j = i
        boundaries.reverse()
        return boundaries

    def _dp_edge(
        self,
        units: Sequence[FlattenedUnit],
        i: int,
        j: int,
        live: int,
        allocation: AllocationResult,
        tables,
    ) -> None:
        """Relax the Eq. 3 edge ``i -> j`` with an obtained allocation."""
        best_cost, predecessor, last_resources, last_allocation = tables
        if not allocation.feasible:
            return
        profiles = self._segment_profiles(units, i, j - 1)
        resources = aggregate_resources(
            profiles,
            allocation.allocations,
            live_output_elements=live,
            num_arrays_total=self.hardware.num_arrays,
            static_weight_elements=self._vectors.window_static_weight_elements(
                i, j - 1
            ),
        )
        inter = inter_segment_cycles(
            last_resources[i],
            resources,
            profiles,
            allocation.allocations,
            self.hardware,
            include_switch_cost=self.options.include_switch_cost,
            allow_boundary_buffering=self.options.allow_memory_mode,
        )
        cost = best_cost[i] + allocation.latency_cycles + inter
        if cost < best_cost[j]:
            best_cost[j] = cost
            predecessor[j] = i
            last_resources[j] = resources
            last_allocation[j] = allocation

    def _run_dp_parallel(
        self,
        units: Sequence[FlattenedUnit],
        m: int,
        window: int,
        tables,
    ) -> None:
        """The Eq. 3 DP as per-wavefront batches on the solver pool.

        At boundary ``j`` every candidate window ``(i, j-1)`` whose
        predecessor is reachable is submitted to the pool as a batch,
        then the tickets are consumed in ascending ``i`` — the exact
        order the sequential inner loop probes tiers and advances
        counters, so strict mode reproduces its solve counts and DP
        decisions bit-identically.  Intra-wavefront windows all end at
        ``j-1`` but start at different ``i``, so their lengths — and
        hence their structural cache keys — necessarily differ:
        single-flight dedup can never collapse two windows the
        sequential DP would have solved separately.

        With ``options.speculative`` set, windows of the next wavefronts
        (up to one per pool worker) are pre-submitted before their
        predecessor costs are known; windows whose predecessor turns out
        unreachable are never consumed by the DP and are tallied as
        ``speculative_waste`` at the end (their tier write-throughs stay
        valid — every solve is deterministic and keyed structurally — so
        results and fingerprints are unchanged, only solve counts grow).
        """
        best_cost = tables[0]
        pending: Dict[Tuple[int, int], object] = {}
        parent_span = self._tracer.current_span_id()
        lookahead = max(1, getattr(self._solver_pool, "workers", 1))
        for j in range(1, m + 1):
            lo = max(0, j - window)
            for i in range(lo, j):
                if best_cost[i] == INFEASIBLE_LATENCY:
                    continue
                self._dispatch_window(units, i, j - 1, pending, parent_span)
            if self.options.speculative:
                for ahead in range(j + 1, min(m, j + lookahead) + 1):
                    for i in range(max(0, ahead - window), ahead):
                        # Predecessors before the current frontier with a
                        # known-unreachable cost are dead; later ones are
                        # unknown and dispatched optimistically.
                        if i < j and best_cost[i] == INFEASIBLE_LATENCY:
                            continue
                        self._dispatch_window(units, i, ahead - 1, pending, parent_span)
            live = int(self._liveness[j - 1]) if j < m else 0
            for i in range(lo, j):
                if best_cost[i] == INFEASIBLE_LATENCY:
                    continue
                allocation = self._settle_window(i, j - 1, pending)
                self._dp_edge(units, i, j, live, allocation, tables)
        if pending:
            # Speculative windows the DP never consumed.  Draining them
            # keeps the reported counters equal to the work performed.
            waste = len(pending)
            for start, end in sorted(pending):
                self._settle_window(start, end, pending)
            self.speculative_waste += waste
            self._solver_pool.record_waste(waste)

    # ------------------------------------------------------------------ #
    # plan construction
    # ------------------------------------------------------------------ #
    def build_plans(
        self, units: Sequence[FlattenedUnit], boundaries: Sequence[Tuple[int, int]]
    ) -> List[SegmentPlan]:
        """Materialise :class:`SegmentPlan` objects for chosen boundaries.

        Allocations are served from this segmenter's per-run memo (the
        DP already solved every candidate window), so this step performs
        no fresh solver work after :meth:`choose_boundaries`.
        """
        plans: List[SegmentPlan] = []
        previous_resources: Optional[SegmentResources] = None
        capacity = self.hardware.array_capacity_elements
        self._prepare(units)
        for seg_index, (start, end) in enumerate(boundaries):
            allocation = self._allocate(units, start, end)
            if not allocation.feasible:
                names = ", ".join(unit.name for unit in units[start : end + 1])
                raise NoFeasiblePlanError(
                    f"segment [{names}] cannot be mapped onto "
                    f"{self.hardware.name!r} ({self.hardware.num_arrays} arrays)",
                    stats=self._stats_payload(),
                )
            profiles = self._segment_profiles(units, start, end)
            live = int(self._liveness[end]) if end + 1 < len(units) else 0
            resources = aggregate_resources(
                profiles,
                allocation.allocations,
                live_output_elements=live,
                num_arrays_total=self.hardware.num_arrays,
                static_weight_elements=self._vectors.window_static_weight_elements(
                    start, end
                ),
            )
            breakdown = inter_segment_breakdown(
                previous_resources,
                resources,
                profiles,
                allocation.allocations,
                self.hardware,
                allow_boundary_buffering=self.options.allow_memory_mode,
            )
            if not self.options.include_switch_cost:
                breakdown["mode_switch"] = 0.0
            inter = sum(breakdown.values())
            boundary_memory = 0
            if self.options.allow_memory_mode and live > 0:
                boundary_memory = min(resources.idle_arrays, -(-live // capacity))
            plans.append(
                SegmentPlan(
                    index=seg_index,
                    operator_names=[unit.name for unit in units[start : end + 1]],
                    allocations=dict(allocation.allocations),
                    profiles=profiles,
                    intra_cycles=allocation.latency_cycles,
                    inter_cycles=inter,
                    inter_breakdown=breakdown,
                    resources=resources,
                    boundary_memory_arrays=boundary_memory,
                )
            )
            previous_resources = resources
        return plans

