"""Figure 1(b) / Figure 5(a)(b): performance vs. compute-mode array ratio.

Regenerates the motivation curves: the normalised performance of each
benchmark model as the fraction of arrays in compute mode sweeps from 5 %
to 95 %, plus the 2-D (compute, memory) heatmaps for ResNet-50 and
LLaMA2-7B.  The expected shape: CNNs peak at a compute-heavy split,
decode-phase LLMs peak at a memory-heavy split.
"""

import pytest

from conftest import record

from repro.experiments import allocation_heatmaps, mode_ratio_curves


@pytest.mark.benchmark(group="fig01")
def test_fig01_mode_ratio_curves(benchmark, chip):
    """Normalised performance vs. compute-mode ratio (Fig. 1(b))."""

    def run():
        sweeps = mode_ratio_curves()
        return {
            model: {
                "best_ratio": sweep.best_ratio,
                "ratios": sweep.ratios,
                "normalized_performance": sweep.normalized_performance,
            }
            for model, sweep in sweeps.items()
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Fig. 1(b): best compute-mode ratio per model"]
    for model, data in rows.items():
        lines.append(f"  {model:12s} best ratio = {data['best_ratio']:.2f}")
    record(benchmark, rows, "\n".join(lines))
    # CNNs want compute-heavy splits, decode-phase LLMs memory-heavy splits.
    assert rows["resnet50"]["best_ratio"] >= 0.5
    assert rows["llama2-7b"]["best_ratio"] <= 0.3


@pytest.mark.benchmark(group="fig05")
def test_fig05_allocation_heatmaps(benchmark, chip):
    """Normalised-performance heatmaps over (compute, memory) counts (Fig. 5(a)(b))."""

    def run():
        heatmaps = allocation_heatmaps(grid_points=9)
        summary = {}
        for model, data in heatmaps.items():
            heatmap = data["heatmap"]
            best_index = heatmap.argmax()
            i, j = divmod(int(best_index), heatmap.shape[1])
            summary[model] = {
                "best_compute_arrays": int(data["compute_counts"][i]),
                "best_memory_arrays": int(data["memory_counts"][j]),
            }
        return summary

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Fig. 5(a)(b): best (compute, memory) array counts"]
    for model, data in rows.items():
        lines.append(
            f"  {model:12s} compute={data['best_compute_arrays']:3d} "
            f"memory={data['best_memory_arrays']:3d}"
        )
    record(benchmark, rows, "\n".join(lines))
    assert rows["resnet50"]["best_compute_arrays"] > rows["llama2-7b"]["best_compute_arrays"]
