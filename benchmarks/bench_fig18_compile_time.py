"""Figure 18: compilation overhead of CMSwitch vs. CIM-MLC.

CMSwitch explores the additional dual-mode dimension (and runs the
fixed-mode fallback pass), so its compilation time is a small multiple of
CIM-MLC's — the paper reports 2.8x-6.3x, with CNNs costing more than
transformers because a transformer block is compiled once and reused.

Besides the pytest-benchmark entry point, the module doubles as a CI
smoke script::

    PYTHONPATH=src python benchmarks/bench_fig18_compile_time.py --quick

which compiles a small model set twice against a shared allocation cache
and prints the warm-pass hit rate and speedup, making compile-time (and
cache) regressions visible straight from CI logs.  Add
``--cache-dir DIR`` to back the cache with a persistent
:class:`repro.core.store.DiskCacheStore`: running the smoke twice against
the same directory shows the cross-process warm start (the second run's
"cold" pass performs zero solves).
"""

import pytest

from conftest import record

from repro.experiments import measure_compile_time
from repro.experiments.compile_time import render_report


@pytest.mark.benchmark(group="fig18")
def test_fig18_compilation_overhead(benchmark, chip, grids):
    """Wall-clock compilation time, CMSwitch vs CIM-MLC (Fig. 18)."""

    def run():
        return measure_compile_time(hardware=chip, repeats=grids["compile_repeats"])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, render_report(rows))

    # CMSwitch compiles slower than CIM-MLC but stays within a small multiple.
    for row in rows:
        assert row["overhead_ratio"] >= 1.0
        assert row["overhead_ratio"] <= 20.0
    # Transformers reuse per-block compilation, so they compile faster than
    # the CNNs with their dozens of distinct convolution shapes.
    by_model = {row["model"]: row["cmswitch_seconds"] for row in rows}
    assert by_model["llama2-7b"] <= by_model["resnet18"] * 2.0


def _quick_smoke(cache_dir=None, json_out="BENCH_fig18.json", solve_jobs=None) -> int:
    """CI smoke: cold/warm compile with a shared cache; print hit rate.

    Besides the human-readable report, the measured numbers are written
    to ``json_out`` as a machine-readable ``BENCH_*.json`` record so CI
    can archive the performance trajectory across commits.
    """
    from conftest import write_bench_record

    from repro.experiments.compile_time import cached_compile_speedup

    stats = cached_compile_speedup(cache_dir=cache_dir, solve_jobs=solve_jobs)
    where = f", persistent store: {cache_dir}" if cache_dir else ""
    if solve_jobs:
        where += f", solver pool: {solve_jobs} workers"
    print(
        f"compile-time smoke (shared allocation cache{where}):\n"
        f"  cold pass : {stats['cold_seconds']:.3f} s "
        f"({stats['allocator_solves_cold']} allocator solves)\n"
        f"  warm pass : {stats['warm_seconds']:.3f} s "
        f"({stats['allocator_solves_warm']} allocator solves)\n"
        f"  cache hit rate (warm): {100.0 * stats['warm_hit_rate']:.1f}%\n"
        f"  speedup   : {stats['speedup']:.1f}x"
    )
    write_bench_record("fig18_compile_time_quick", json_out, **stats)
    # The warm pass must reuse the cold pass's solves; anything less than a
    # near-total hit rate signals a cache-key regression.
    if stats["warm_hit_rate"] < 0.95 or stats["allocator_solves_warm"] > stats[
        "allocator_solves_cold"
    ]:
        print("FAIL: warm pass did not reuse cached allocations")
        return 1
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run the CI smoke")
    parser.add_argument(
        "--cache-dir", default=None, help="persistent allocation-cache directory"
    )
    parser.add_argument(
        "--json-out",
        default="BENCH_fig18.json",
        help="machine-readable result record ('' disables)",
    )
    parser.add_argument(
        "--solve-jobs",
        type=int,
        default=None,
        help=(
            "worker threads for window-allocation solves (one shared "
            "pool; strict mode keeps solve counts identical)"
        ),
    )
    cli_args, _ = parser.parse_known_args()
    if cli_args.quick:
        sys.exit(
            _quick_smoke(
                cache_dir=cli_args.cache_dir,
                json_out=cli_args.json_out,
                solve_jobs=cli_args.solve_jobs,
            )
        )
    print(render_report(measure_compile_time()))
