"""Tests for the compiled-program containers and the sensitivity experiment."""

import pytest

from repro.core.program import CompiledProgram, SegmentPlan
from repro.cost import OperatorAllocation, profile_operator
from repro.experiments.sensitivity import render_report, run_sensitivity
from repro.hardware import small_test_chip
from repro.ir import Linear, TensorSpec


def make_segment(index, compute, memory, intra, inter, boundary=0):
    op = Linear(
        f"fc{index}",
        input=TensorSpec(f"x{index}", (4, 64)),
        output=TensorSpec(f"y{index}", (4, 64)),
        weight=TensorSpec(f"w{index}", (64, 64)),
    )
    profile = profile_operator(op)
    return SegmentPlan(
        index=index,
        operator_names=[op.name],
        allocations={op.name: OperatorAllocation(compute, memory)},
        profiles={op.name: profile},
        intra_cycles=intra,
        inter_cycles=inter,
        inter_breakdown={"writeback": 0.0, "mode_switch": inter, "weight_reload": 0.0},
        boundary_memory_arrays=boundary,
    )


@pytest.fixture
def program():
    hw = small_test_chip()
    segments = [
        make_segment(0, compute=2, memory=2, intra=100.0, inter=0.0),
        make_segment(1, compute=4, memory=0, intra=300.0, inter=10.0, boundary=2),
    ]
    return CompiledProgram(
        graph_name="toy",
        compiler_name="cmswitch",
        hardware=hw,
        segments=segments,
        block_repeat=3.0,
    )


class TestSegmentPlan:
    def test_array_counts_include_boundary_buffers(self):
        segment = make_segment(0, compute=3, memory=1, intra=10, inter=0, boundary=2)
        assert segment.compute_arrays == 3
        assert segment.memory_arrays == 3  # 1 operator buffer + 2 boundary
        assert segment.memory_array_ratio == pytest.approx(0.5)

    def test_total_cycles(self):
        segment = make_segment(0, 1, 0, intra=50.0, inter=25.0)
        assert segment.total_cycles == 75.0

    def test_describe_mentions_operators(self):
        assert "fc0" in make_segment(0, 1, 0, 1, 0).describe()


class TestCompiledProgram:
    def test_latency_aggregation(self, program):
        assert program.graph_cycles == pytest.approx(410.0)
        assert program.end_to_end_cycles == pytest.approx(3 * 410.0)
        assert program.intra_cycles == pytest.approx(400.0)
        assert program.inter_cycles == pytest.approx(10.0)

    def test_switch_share(self, program):
        assert program.switch_cycles == pytest.approx(10.0)
        assert program.switch_overhead_fraction == pytest.approx(10.0 / 410.0)

    def test_memory_ratio_is_time_weighted(self, program):
        # Segment 0 (ratio 0.5) runs 100 cycles, segment 1 (ratio 2/6) runs 300.
        expected = (0.5 * 100 + (2 / 6) * 300) / 400
        assert program.mean_memory_array_ratio == pytest.approx(expected)

    def test_memory_ratio_empty_program(self):
        empty = CompiledProgram(
            graph_name="empty",
            compiler_name="cmswitch",
            hardware=small_test_chip(),
            segments=[],
        )
        assert empty.mean_memory_array_ratio == 0.0
        assert empty.graph_cycles == 0.0

    def test_end_to_end_ms_conversion(self, program):
        assert program.end_to_end_ms == pytest.approx(
            program.hardware.cycles_to_ms(program.end_to_end_cycles)
        )

    def test_allocation_table_shape(self, program):
        rows = program.allocation_table()
        assert len(rows) == 2
        assert {row["operator"] for row in rows} == {"fc0", "fc1"}

    def test_summary_text(self, program):
        text = program.summary()
        assert "toy" in text and "segments" in text


class TestSensitivityExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        chip = small_test_chip()
        return run_sensitivity(
            model="tiny-transformer",
            batch_size=1,
            seq_len=16,
            hardware=chip,
            sweeps={"num_arrays": (8, 16), "switch_latency": (1, 256)},
        )

    def test_row_per_sweep_point(self, rows):
        assert len(rows) == 4
        assert {row["parameter"] for row in rows} == {"num_arrays", "switch_latency"}

    def test_dual_mode_never_loses(self, rows):
        assert all(row["speedup_vs_cim-mlc"] >= 0.99 for row in rows)

    def test_bigger_chip_never_slower(self, rows):
        by_arrays = {
            row["value"]: row["cmswitch_cycles"]
            for row in rows
            if row["parameter"] == "num_arrays"
        }
        assert by_arrays[16] <= by_arrays[8] * 1.001

    def test_render_report(self, rows):
        text = render_report(rows)
        assert "parameter" in text and "speedup_vs_cim-mlc" in text
