"""Segment-free analytical cost bounds (the rung-0 evaluation model).

Design-space exploration at scale needs to score a candidate (hardware,
option) point far more cheaply than running the full compile pipeline —
the same tiering CIM-Explorer and CIMFlow put in front of their flows.
This module is that cheap tier's cost model: closed-form *lower bounds*
on latency and energy computed directly from the flattened operator
profiles, with **zero allocator solves**, no segmentation DP and no
:class:`~repro.cost.latency.OperatorAllocation` bookkeeping beyond the
single-operator sweeps already exposed by :mod:`repro.cost.latency`.

The latency bound is the maximum of two quantities, each provably a
lower bound on the compiled plan's graph latency:

* **compute roofline** — ``total MACs / (num_arrays * OP_cim)``: within
  any pipelined segment, operators occupy disjoint array sets whose
  compute counts sum to at most the chip, so the segment's bottleneck
  latency is at least the segment's MACs at the whole chip's peak rate
  (mediant inequality ``max(a_i/b_i) >= sum(a_i)/sum(b_i)``); summing
  over segments telescopes to the whole graph.  Serial scheduling only
  increases the left-hand side.
* **operator bound** — for every unit, the best latency any allocation
  within the chip budget can achieve
  (:func:`~repro.cost.latency.best_split_latency`, or
  :func:`~repro.cost.latency.minimum_latency_all_compute` when memory
  mode is off, where all-compute is optimal because supply is fixed and
  the compute rate is monotone in arrays).  The compiled plan gives each
  unit *some* allocation within the budget, so its segment latency is at
  least this bound.

Inter-segment transition costs (write-back, mode switches, weight
reloads) and pipeline-fill cycles are all non-negative and deliberately
excluded — excluding them keeps the bound valid for every segmentation
the DP could choose.

The energy bound charges only activity every plan must perform, each at
the cheapest coefficient the detailed model
(:func:`repro.cost.energy.estimate_energy`) could possibly charge it:
exact MAC energy, one write + one off-chip fetch per static weight
element (weights are programmed at least once), every streamed element
at the cheapest on-chip access energy, and leakage over the latency
lower bound.

The calibration suite (``tests/test_eval.py``) ratchets both guarantees
against the registered model zoo: the analytical latency never exceeds
the compiled latency, and feasibility verdicts (delegated to
:class:`~repro.core.feasibility.FeasibilityModel` by the evaluator
layer) always agree with the compiler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..hardware.deha import DualModeHardwareAbstraction
from .arithmetic import OperatorProfile
from .energy import EnergyParameters
from .latency import (
    INFEASIBLE_LATENCY,
    best_split_latency,
    minimum_latency_all_compute,
)

__all__ = [
    "AnalyticalEstimate",
    "analytical_energy_bound",
    "analytical_graph_estimate",
    "analytical_latency_bound",
    "compute_roofline_cycles",
    "operator_latency_bound",
]


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Closed-form lower-bound estimate for one graph on one chip.

    Attributes:
        graph_cycles: Latency lower bound of one graph pass.
        end_to_end_cycles: ``graph_cycles`` times the block repeat.
        energy_pj: Energy lower bound of one graph pass (picojoules).
        end_to_end_mj: End-to-end energy lower bound (millijoules).
        min_peak_arrays: Fewest arrays any feasible plan occupies at its
            busiest operator (the largest single-unit footprint) — a
            lower bound on the compiled plan's peak array usage.
        bottleneck: Which bound is active: ``"compute-roofline"`` (the
            chip-wide MAC rate limits the graph) or ``"operator"`` (one
            operator's best achievable latency does).
        block_repeat: The multiplier applied for end-to-end figures.
    """

    graph_cycles: float
    end_to_end_cycles: float
    energy_pj: float
    end_to_end_mj: float
    min_peak_arrays: int
    bottleneck: str
    block_repeat: float = 1.0


def compute_roofline_cycles(
    profiles: Iterable[OperatorProfile], hardware: DualModeHardwareAbstraction
) -> float:
    """Graph MACs at the whole chip's peak compute rate (cycles)."""
    total_macs = sum(profile.macs for profile in profiles)
    if total_macs <= 0:
        return 0.0
    peak_rate = hardware.num_arrays * hardware.op_cim
    if peak_rate <= 0:
        return INFEASIBLE_LATENCY
    return total_macs / peak_rate


def operator_latency_bound(
    profile: OperatorProfile,
    hardware: DualModeHardwareAbstraction,
    allow_memory_mode: bool = True,
) -> float:
    """Best latency any within-budget allocation achieves for one unit.

    With memory mode allowed this sweeps every compute/memory split of
    the whole chip; without it, all-compute is optimal (supply does not
    depend on compute arrays, and the compute rate is monotone), so the
    closed-form all-compute latency is used directly.
    """
    if allow_memory_mode:
        latency, _ = best_split_latency(profile, hardware.num_arrays, hardware)
        return latency
    return minimum_latency_all_compute(profile, hardware.num_arrays, hardware)


def analytical_latency_bound(
    profiles: Sequence[OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    allow_memory_mode: bool = True,
) -> Tuple[float, str]:
    """Latency lower bound of one graph pass, with the active bound.

    Returns:
        ``(cycles, bottleneck)`` where ``bottleneck`` is
        ``"compute-roofline"`` or ``"operator"`` (see module docstring
        for why each is a true lower bound).
    """
    roofline = compute_roofline_cycles(profiles, hardware)
    operator_bound = max(
        (
            operator_latency_bound(profile, hardware, allow_memory_mode)
            for profile in profiles
        ),
        default=0.0,
    )
    if operator_bound > roofline:
        return operator_bound, "operator"
    return roofline, "compute-roofline"


def analytical_energy_bound(
    profiles: Sequence[OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    cycles_lower_bound: float,
    parameters: Optional[EnergyParameters] = None,
) -> float:
    """Energy lower bound of one graph pass (picojoules).

    Every term charges activity the detailed model charges for any
    compiled plan, at the cheapest coefficient that model could apply:
    MAC energy is exact; static weights are written (and fetched across
    the off-chip link) at least once; streamed data moves at least once
    at the cheapest on-chip access energy; leakage accrues over at least
    the latency lower bound.  Mode-switch and inter-segment write-back
    energy are non-negative extras and are excluded.
    """
    parameters = (parameters or EnergyParameters()).scaled_for(hardware)
    cheapest_access = min(
        parameters.array_read_pj_per_element, parameters.buffer_pj_per_element
    )
    energy = 0.0
    for profile in profiles:
        energy += profile.macs * parameters.mac_pj
        energy += profile.streamed_elements * cheapest_access
        if profile.has_static_weight:
            energy += profile.weight_elements * (
                parameters.array_write_pj_per_element
                + parameters.offchip_pj_per_element
            )
    if math.isfinite(cycles_lower_bound):
        energy += cycles_lower_bound * parameters.leakage_pj_per_cycle
    return energy


def analytical_graph_estimate(
    profiles: Sequence[OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    allow_memory_mode: bool = True,
    block_repeat: float = 1.0,
    parameters: Optional[EnergyParameters] = None,
) -> AnalyticalEstimate:
    """Assemble the full rung-0 estimate for a flattened profile list.

    Feasibility is deliberately *not* decided here — the evaluator layer
    asks the shared :class:`~repro.core.feasibility.FeasibilityModel`,
    the same predicates the allocators use, so the two tiers cannot
    drift apart.  On an infeasible candidate the bounds are still
    well-defined (and still lower bounds) but meaningless.
    """
    cycles, bottleneck = analytical_latency_bound(
        profiles, hardware, allow_memory_mode
    )
    energy_pj = analytical_energy_bound(profiles, hardware, cycles, parameters)
    min_peak_arrays = max(
        (max(1, profile.min_compute_arrays(hardware)) for profile in profiles),
        default=0,
    )
    return AnalyticalEstimate(
        graph_cycles=cycles,
        end_to_end_cycles=cycles * block_repeat,
        energy_pj=energy_pj,
        end_to_end_mj=energy_pj * block_repeat * 1e-9,
        min_peak_arrays=min_peak_arrays,
        bottleneck=bottleneck,
        block_repeat=block_repeat,
    )
