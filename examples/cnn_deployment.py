#!/usr/bin/env python3
"""Deploying CNN classifiers on a dual-mode CIM chip.

Convolutional networks sit at the other end of the arithmetic-intensity
spectrum from LLMs: most layers want as many compute-mode arrays as
possible, but the early layers with huge feature maps still benefit from a
handful of memory-mode arrays for input bandwidth (the Fig. 15(a) story).
This example

* compiles ResNet-18 and VGG-16 at ImageNet resolution,
* compares all four compilers (PUMA, OCC, CIM-MLC, CMSwitch),
* prints the layer-wise arithmetic intensity that explains the allocation
  choices (Fig. 6(a)),
* shows how the chosen compute/memory split changes along the network.

Run with ``python examples/cnn_deployment.py``.
"""

from repro.analysis import layerwise_intensity
from repro.experiments import encode_workload, make_compiler
from repro.hardware import dynaplasia
from repro.models import build_model

MODELS = ("resnet18", "vgg16")
COMPILERS = ("puma", "occ", "cim-mlc", "cmswitch")


def main() -> None:
    hardware = dynaplasia()
    for model in MODELS:
        workload = encode_workload(model, batch_size=1, seq_len=64)
        graph = build_model(model, workload)

        print(f"=== {model} ===")
        intensities = layerwise_intensity(graph)
        print("layer-wise arithmetic intensity (first / median / last conv):")
        convs = [layer for layer in intensities if layer.op_type == "conv2d"]
        if convs:
            median = convs[len(convs) // 2]
            print(f"  first  {convs[0].operator:28s} {convs[0].intensity:8.1f}")
            print(f"  median {median.operator:28s} {median.intensity:8.1f}")
            print(f"  last   {convs[-1].operator:28s} {convs[-1].intensity:8.1f}")

        results = {}
        for name in COMPILERS:
            program = make_compiler(name, hardware).compile(graph)
            results[name] = program
        baseline = results["cim-mlc"].end_to_end_cycles
        print("end-to-end latency (normalised to CIM-MLC):")
        for name in COMPILERS:
            cycles = results[name].end_to_end_cycles
            print(f"  {name:9s} {results[name].end_to_end_ms:9.3f} ms "
                  f"({baseline / cycles:5.2f}x vs CIM-MLC)")

        cmswitch = results["cmswitch"]
        print("CMSwitch compute/memory split along the network:")
        for segment in cmswitch.segments:
            total = segment.compute_arrays + segment.memory_arrays
            share = segment.memory_arrays / total if total else 0.0
            print(f"  segment {segment.index:2d}: {segment.compute_arrays:3d}C/"
                  f"{segment.memory_arrays:3d}M ({share * 100:4.1f}% memory) "
                  f"ops={len(segment.operator_names)}")
        print()


if __name__ == "__main__":
    main()
