"""In-flight request coalescing (the daemon's single-flight table).

A cold compile costs seconds and hundreds of allocator solves; the
caches only help *after* it finishes.  When N clients ask for the same
program concurrently — a fleet booting onto one model, a sweep fanning
out — the cache alone would run N cold compiles.  :class:`SingleFlight`
closes that window: the first request for a key becomes the **leader**
and computes; every request arriving while it is in flight becomes a
**follower** and waits for the leader's result.  Same
fingerprint-determining inputs → one compile, many waiters.

The table is keyed like the allocation cache is — by a structural
digest of the compile-determining inputs
(:func:`repro.serve.wire.request_fingerprint`: graph identity × DEHA
fingerprint × options) — and deliberately generic: values are opaque,
so tests drive it with stub work.

Waiting is bounded per follower: a follower that times out abandons the
flight (raising :class:`CoalesceTimeout`) without disturbing the leader
or the other followers, so one slow compile can never wedge the accept
loop.  A leader that fails propagates its exception object to every
follower; the flight is then retired, so the *next* request for the key
starts a fresh attempt instead of replaying a stale failure.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple

__all__ = ["CoalesceTimeout", "Flight", "SingleFlight"]


class CoalesceTimeout(TimeoutError):
    """A follower's bounded wait expired before the leader finished."""


class Flight:
    """One in-flight computation and the latch its followers wait on."""

    __slots__ = ("key", "done", "value", "error", "waiters", "_lock")

    def __init__(self, key) -> None:
        self.key = key
        self.done = threading.Event()
        self.value = None
        self.error: Optional[BaseException] = None
        self.waiters = 0
        self._lock = threading.Lock()

    def add_waiter(self) -> None:
        with self._lock:
            self.waiters += 1

    def settle(self, value=None, error: Optional[BaseException] = None) -> None:
        """Publish the outcome and release every waiter (idempotent)."""
        if not self.done.is_set():
            self.value = value
            self.error = error
            self.done.set()


class SingleFlight:
    """Keyed duplicate suppression for concurrent identical requests.

    Thread-safe.  Usage (what the daemon's request path does)::

        flight, leader = flights.begin(key)
        if leader:
            try:
                result = compute()
            except Exception as exc:
                flights.finish(flight, error=exc)
                raise
            flights.finish(flight, value=result)
            return result
        return flights.wait(flight, timeout=30.0)   # a follower

    Counters: ``started`` flights (leaders) and ``coalesced`` follower
    waits — the daemon surfaces both on ``/metrics``, and the CI smoke
    asserts ``coalesced >= 1`` while total solves equal one compile's.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[object, Flight] = {}
        self.started = 0
        self.coalesced = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._flights)

    def begin(self, key) -> Tuple[Flight, bool]:
        """Join the flight for ``key``, creating it if none is in the air.

        Returns:
            ``(flight, leader)`` — ``leader`` is True for exactly one
            concurrent caller per key; that caller *must* eventually call
            :meth:`finish` on the flight (also on failure), or followers
            will wait out their timeouts.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.add_waiter()
                self.coalesced += 1
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            self.started += 1
            return flight, True

    def finish(
        self, flight: Flight, value=None, error: Optional[BaseException] = None
    ) -> None:
        """Retire a flight with its outcome, waking every follower.

        The key is freed *before* waiters run, so a request arriving
        after the outcome is published starts a fresh flight — failures
        are never replayed to future callers, and long-lived daemons
        cannot leak settled flights.
        """
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
        flight.settle(value=value, error=error)

    def wait(self, flight: Flight, timeout: Optional[float] = None):
        """Block until the flight settles; return or re-raise its outcome.

        Raises:
            CoalesceTimeout: The bounded wait expired.  The flight keeps
                flying for everyone else.
            BaseException: Whatever the leader's computation raised.
        """
        if not flight.done.wait(timeout):
            raise CoalesceTimeout(
                f"gave up waiting on in-flight request {flight.key!r} "
                f"after {timeout:.1f}s (the compile keeps running)"
            )
        if flight.error is not None:
            raise flight.error
        return flight.value

    def do(self, key, fn: Callable[[], object], timeout: Optional[float] = None):
        """Convenience wrapper: run ``fn`` once per key, share the result.

        Returns:
            ``(value, coalesced)`` — ``coalesced`` is True when this call
            waited on another caller's computation instead of running.
        """
        flight, leader = self.begin(key)
        if leader:
            try:
                value = fn()
            except BaseException as exc:
                self.finish(flight, error=exc)
                raise
            self.finish(flight, value=value)
            return value, False
        return self.wait(flight, timeout=timeout), True
