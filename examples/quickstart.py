#!/usr/bin/env python3
"""Quickstart: compile a small CNN for a dual-mode CIM chip.

This example walks through the whole public API in a couple of minutes:

1. describe the target chip through the dual-mode hardware abstraction,
2. build a network from the model zoo,
3. compile it through a :class:`repro.api.Session` (the pass pipeline:
   dynamic-programming segmentation plus MIP-based compute/memory
   allocation, per-pass wall times on the program),
4. inspect the segment plans and the generated meta-operator flow,
5. check the compiled mapping functionally and re-estimate its latency
   with the timing simulator.

Run with ``python examples/quickstart.py``.
"""

from repro.api import Session
from repro.core import CompilerOptions
from repro.hardware import small_test_chip
from repro.models import Workload, build_model
from repro.sim import FunctionalSimulator, TimingSimulator


def main() -> None:
    # 1. The hardware abstraction: a small dual-mode chip keeps the example
    #    fast; swap in repro.hardware.dynaplasia() for the paper's target.
    hardware = small_test_chip()
    print(hardware.summary())
    print()

    # 2. A network from the model zoo (tiny CNN at 32x32 resolution).
    graph = build_model("tiny-cnn", Workload(batch_size=1))
    stats = graph.stats()
    print(
        f"model {graph.name}: {stats.num_operators} operators, "
        f"{stats.total_macs / 1e6:.1f} MMACs, {stats.total_weight_bytes / 1e3:.1f} KB weights"
    )
    print()

    # 3. Compile through a session.  The options shown are the defaults;
    #    they are spelled out here so the knobs are easy to discover.
    options = CompilerOptions(
        max_segment_operators=8,
        use_milp=True,
        include_switch_cost=True,
        generate_code=True,
    )
    session = Session(hardware=hardware, options=options)
    program = session.compile(graph)
    print(program.summary())
    print("per-pass wall time:", {
        name: round(seconds, 4)
        for name, seconds in program.stats["pass_seconds"].items()
    })
    print()

    # 4. Segment plans and the dual-mode meta-operator flow (Fig. 13 syntax).
    for segment in program.segments:
        print(segment.describe())
    print()
    print(program.meta_program.render())
    print()

    # 5. Verify the mapping and re-estimate latency by replaying the flow.
    functional = FunctionalSimulator(hardware).run(program, graph)
    print(functional.summary())
    timing = TimingSimulator(hardware).run(program)
    print(timing.summary())
    print(f"compiler prediction: {program.graph_cycles:,.0f} cycles")


if __name__ == "__main__":
    main()
