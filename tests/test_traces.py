"""Trace format, generators and transforms (:mod:`repro.sim.traces`)."""

from __future__ import annotations

import json

import pytest

from repro.models.workload import Phase, Workload
from repro.sim.traces import (
    TRACE_FORMAT_VERSION,
    Trace,
    TraceFormatError,
    TraceRequest,
    bursty_trace,
    default_workload,
    diurnal_trace,
    load_trace,
    poisson_trace,
    save_trace,
    synthetic_trace,
)


def _request(i, arrival_ms, model="tiny-mlp", seq_len=32):
    return TraceRequest(
        request_id=f"r{i}",
        arrival_ms=arrival_ms,
        model=model,
        workload=Workload(batch_size=1, seq_len=seq_len),
    )


class TestTraceBasics:
    def test_requests_sorted_by_arrival(self):
        trace = Trace(requests=[_request(0, 5.0), _request(1, 1.0), _request(2, 3.0)])
        assert [r.arrival_ms for r in trace.requests] == [1.0, 3.0, 5.0]
        assert len(trace) == 3
        assert trace.duration_ms == 5.0

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            _request(0, -1.0)

    def test_models_in_first_appearance_order(self):
        trace = Trace(
            requests=[
                _request(0, 0.0, model="tiny-cnn"),
                _request(1, 1.0, model="tiny-mlp"),
                _request(2, 2.0, model="tiny-cnn"),
            ]
        )
        assert trace.models == ["tiny-cnn", "tiny-mlp"]

    def test_gap_scaling_scales_arrivals(self):
        trace = Trace(requests=[_request(0, 0.0), _request(1, 2.0), _request(2, 5.0)])
        scaled = trace.with_gaps_scaled(2.0)
        assert [r.arrival_ms for r in scaled.requests] == [0.0, 4.0, 10.0]
        assert scaled.metadata["gap_scale"] == 2.0
        # The original is untouched.
        assert [r.arrival_ms for r in trace.requests] == [0.0, 2.0, 5.0]

    def test_gap_scaling_rejects_nonpositive(self):
        trace = Trace(requests=[_request(0, 0.0)])
        with pytest.raises(ValueError, match="positive"):
            trace.with_gaps_scaled(0.0)

    def test_merged_preserves_every_request(self):
        a = Trace(requests=[_request(0, 0.0), _request(1, 4.0)])
        b = Trace(requests=[_request(0, 1.0, model="tiny-cnn")])
        merged = a.merged(b)
        assert len(merged) == 3
        assert [r.arrival_ms for r in merged.requests] == [0.0, 1.0, 4.0]
        # Ids are prefixed per source so a shared id never collapses.
        assert sorted(r.request_id for r in merged.requests) == ["a:r0", "a:r1", "b:r0"]


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        trace = Trace(
            requests=[_request(0, 0.0), _request(1, 2.5, model="tiny-cnn", seq_len=16)],
            metadata={"kind": "test"},
        )
        path = save_trace(trace, tmp_path / "t.jsonl")
        loaded = load_trace(path)
        assert loaded.metadata == {"kind": "test"}
        assert [r.to_payload() for r in loaded.requests] == [
            r.to_payload() for r in trace.requests
        ]

    def test_workload_fields_survive_round_trip(self, tmp_path):
        workload = Workload(
            batch_size=2, seq_len=48, output_len=8, phase=Phase.ENCODE, kv_len=56
        )
        trace = Trace(
            requests=[
                TraceRequest(
                    request_id="r0", arrival_ms=0.0, model="tiny-transformer",
                    workload=workload,
                )
            ]
        )
        loaded = load_trace(save_trace(trace, tmp_path / "t.jsonl"))
        assert loaded.requests[0].workload == workload

    def test_newer_version_rejected_with_clear_error(self, tmp_path):
        path = tmp_path / "future.jsonl"
        header = {"format": "repro-trace", "version": TRACE_FORMAT_VERSION + 1}
        path.write_text(json.dumps(header) + "\n", encoding="utf-8")
        with pytest.raises(TraceFormatError, match="newer than the supported"):
            load_trace(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_trace(tmp_path / "nope.jsonl")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(TraceFormatError, match="empty"):
            load_trace(path)

    def test_non_trace_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n', encoding="utf-8")
        with pytest.raises(TraceFormatError, match="not a 'repro-trace' file"):
            load_trace(path)

    def test_malformed_request_line_names_line_number(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"format": "repro-trace", "version": 1}\n{"id": "r0"}\n',
            encoding="utf-8",
        )
        with pytest.raises(TraceFormatError, match=":2:"):
            load_trace(path)

    def test_non_json_line_rejected(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(
            '{"format": "repro-trace", "version": 1}\nnot json\n', encoding="utf-8"
        )
        with pytest.raises(TraceFormatError, match="not JSON"):
            load_trace(path)


class TestGenerators:
    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_same_seed_same_trace(self, kind):
        make = lambda: synthetic_trace(  # noqa: E731
            kind, ["tiny-mlp", "tiny-cnn"], num_requests=20, seed=11
        )
        first, second = make(), make()
        assert [r.to_payload() for r in first.requests] == [
            r.to_payload() for r in second.requests
        ]

    @pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
    def test_different_seed_different_arrivals(self, kind):
        a = synthetic_trace(kind, ["tiny-mlp"], num_requests=20, seed=0)
        b = synthetic_trace(kind, ["tiny-mlp"], num_requests=20, seed=1)
        assert [r.arrival_ms for r in a.requests] != [r.arrival_ms for r in b.requests]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace generator"):
            synthetic_trace("uniform", ["tiny-mlp"])

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            poisson_trace([], num_requests=4)
        with pytest.raises(ValueError):
            poisson_trace(["tiny-mlp"], num_requests=0)
        with pytest.raises(ValueError):
            poisson_trace(["tiny-mlp"], rate_rps=0.0)
        with pytest.raises(ValueError):
            poisson_trace(["tiny-mlp"], seq_len_buckets=())
        with pytest.raises(ValueError):
            poisson_trace(["tiny-mlp"], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            bursty_trace(["tiny-mlp"], burst_probability=1.5)
        with pytest.raises(ValueError):
            diurnal_trace(["tiny-mlp"], peak_rate_rps=1.0, trough_rate_rps=2.0)

    def test_buckets_and_models_respected(self):
        trace = poisson_trace(
            ["tiny-mlp", "tiny-cnn"], num_requests=40, seed=5,
            seq_len_buckets=(16, 48),
        )
        assert {r.workload.seq_len for r in trace.requests} <= {16, 48}
        assert set(trace.models) <= {"tiny-mlp", "tiny-cnn"}

    def test_first_arrival_at_zero_and_monotone(self):
        trace = bursty_trace(["tiny-mlp"], num_requests=25, seed=2)
        arrivals = [r.arrival_ms for r in trace.requests]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_default_workload_phase_rule(self):
        # Mirrors the CLI convention: encode for transformers, prefill
        # (ignored anyway) for CNN-shaped models.
        assert default_workload("tiny-transformer", 16).phase == Phase.ENCODE
        assert default_workload("tiny-cnn", 32).phase == Phase.PREFILL
