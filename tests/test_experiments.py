"""Tests for the experiment harness (reduced versions of every paper figure).

Each experiment runs on a heavily reduced grid so the suite stays fast but
still exercises the exact code paths the benchmarks use, and asserts the
qualitative properties the paper reports (who wins, in which direction the
trends point).
"""

import pytest

from repro.experiments import (
    allocation_report,
    encode_workload,
    generative_cycles,
    geometric_mean,
    make_compiler,
    measure_compile_time,
    memory_ratio_trend,
    prime_scalability,
    run_end_to_end,
    run_generative,
    run_model,
    run_workload_scale,
    speedup,
    summarize,
    switch_overhead,
)
from repro.experiments.common import format_table
from repro.hardware import dynaplasia, small_test_chip
from repro.models import Phase, Workload


@pytest.fixture(scope="module")
def chip():
    return dynaplasia()


class TestCommonHelpers:
    def test_speedup_and_geomean(self):
        assert speedup(200.0, 100.0) == 2.0
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_encode_workload_phases(self):
        assert encode_workload("bert", 1, 64).phase is Phase.ENCODE
        assert encode_workload("resnet18", 1, 64).phase is Phase.PREFILL

    def test_make_compiler_names(self, chip):
        for name in ("cmswitch", "cim-mlc", "puma", "occ"):
            assert make_compiler(name, chip) is not None
        with pytest.raises(KeyError):
            make_compiler("xla", chip)

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}], ["a", "b"])
        assert "a" in text and "2.500" in text

    def test_run_model_fields(self, chip):
        result = run_model("tiny-transformer", Workload(batch_size=1, seq_len=16), chip, "cmswitch")
        assert result.cycles > 0
        assert 0.0 <= result.memory_array_ratio <= 1.0
        assert result.num_segments >= 1

    def test_generative_cycles_composition(self, chip):
        workload = Workload(batch_size=1, seq_len=32, output_len=8)
        result = generative_cycles("tiny-transformer", workload, chip, "cmswitch")
        assert result["cycles"] == pytest.approx(
            result["prefill_cycles"] + 8 * result["decode_cycles_per_token"]
        )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def rows(self, chip):
        return run_end_to_end(
            hardware=chip,
            models=("resnet18", "llama2-7b"),
            batch_sizes=(1,),
            seq_len=64,
        )

    def test_row_per_model(self, rows):
        assert len(rows) == 2
        assert {row["model"] for row in rows} == {"resnet18", "llama2-7b"}

    def test_cmswitch_not_slower_than_cim_mlc(self, rows):
        for row in rows:
            assert row["speedup_vs_cim-mlc"] >= 0.99

    def test_cmswitch_beats_weaker_baselines(self, rows):
        for row in rows:
            assert row["speedup_vs_occ"] >= 1.0

    def test_llm_gains_exceed_cnn_gains(self, rows):
        by_model = {row["model"]: row for row in rows}
        assert by_model["llama2-7b"]["speedup_vs_cim-mlc"] >= by_model["resnet18"]["speedup_vs_cim-mlc"] - 0.05

    def test_summary_contains_geomeans(self, rows):
        summary = summarize(rows)
        assert "speedup_vs_cim-mlc" in summary
        assert summary["speedup_vs_cim-mlc"] >= 1.0


class TestWorkloadScale:
    @pytest.fixture(scope="class")
    def rows(self, chip):
        return run_workload_scale(
            hardware=chip,
            models=("bert",),
            batch_sizes=(4,),
            sequence_lengths=(256, 2048),
        )

    def test_grid_size(self, rows):
        assert len(rows) == 2

    def test_speedup_converges_at_long_sequence_length(self, rows):
        # The paper reports BERT reaching parity with CIM-MLC beyond ~512;
        # the advantage at the longest length must not exceed the mid-range.
        mid = next(row for row in rows if row["seq_len"] == 256)
        long = next(row for row in rows if row["seq_len"] == 2048)
        assert long["speedup_vs_cim-mlc"] <= mid["speedup_vs_cim-mlc"] + 0.02
        assert long["speedup_vs_cim-mlc"] <= 1.1

    def test_memory_ratio_trend_helper(self, rows):
        trend = memory_ratio_trend(rows, "bert", 4)
        assert len(trend) == 2
        assert all(0.0 <= value <= 1.0 for value in trend)


class TestGenerative:
    def test_rows_and_speedups(self, chip):
        rows = run_generative(
            hardware=chip, models=("llama2-7b",), lengths=(32,), fixed_length=32, batch_size=1
        )
        assert len(rows) == 2  # vary_output and vary_input
        for row in rows:
            assert row["speedup_vs_cim-mlc"] > 0.9


class TestAllocationReport:
    def test_vgg_report_structure(self, chip):
        rows = allocation_report("vgg16", hardware=chip)
        assert rows
        for row in rows:
            assert row["compute_arrays"] + row["memory_arrays"] <= chip.num_arrays
            assert 0.0 <= row["memory_share"] <= 1.0

    def test_transformer_report_uses_memory_mode(self, chip):
        rows = allocation_report("opt-6.7b", hardware=chip)
        assert any(row["memory_arrays"] > 0 for row in rows)


class TestCompileTimeAndOverheads:
    def test_compile_time_rows(self, chip):
        rows = measure_compile_time(hardware=chip, models=("tiny-transformer",), repeats=1)
        assert rows[0]["cmswitch_seconds"] > 0
        assert rows[0]["cim-mlc_seconds"] > 0
        assert rows[0]["overhead_ratio"] >= 1.0
        # The pass pipeline attributes where CMSwitch's extra time goes.
        assert rows[0]["segment_seconds"] > 0
        assert rows[0]["fallback_seconds"] > 0
        assert (
            rows[0]["segment_seconds"] + rows[0]["fallback_seconds"]
            <= rows[0]["cmswitch_seconds"] * 1.001
        )

    def test_switch_overhead_small_share(self, chip):
        rows = switch_overhead(hardware=chip, models=("tiny-transformer",))
        row = rows[0]
        assert 0.0 <= row["switch_share"] <= 0.10
        assert 0.0 <= row["switch_process_share"] <= 1.0

    def test_prime_scalability_not_slower(self):
        rows = prime_scalability(models=("tiny-transformer",))
        assert rows[0]["speedup_vs_cim-mlc"] >= 0.99


class TestServingSLOCurve:
    def test_slo_curve_shape_and_monotone_load(self):
        from repro.experiments.serving import render_report, run_slo_curve

        rows = run_slo_curve(
            presets=("small-test-chip",),
            models=("tiny-mlp", "tiny-cnn"),
            num_requests=10,
            seed=3,
            load_factors=(0.5, 1.0),
        )
        assert len(rows) == 2
        light, heavy = rows
        assert light["preset"] == heavy["preset"] == "small-test-chip"
        # More offered load cannot reduce tail latency (same request
        # sequence, gaps only tightened) and keeps the chip busier.
        assert heavy["p99_ms"] >= light["p99_ms"] - 1e-9
        assert heavy["utilisation"] >= light["utilisation"] - 1e-9
        for row in rows:
            assert 0.0 <= row["utilisation"] <= 1.0
            assert row["p50_ms"] <= row["p99_ms"]
            assert row["served"] == row["requests"] == 10
        report = render_report(rows)
        assert "p99_ms" in report and "small-test-chip" in report
