"""The stable public API: one :class:`Session` over compile / batch / DSE.

Before this module existed there were three separate entry points —
:func:`repro.core.compiler.compile_model`,
:func:`repro.service.compile_batch` and :class:`repro.dse.DSERunner` —
each re-plumbing hardware presets, cache directories and pool backends
on its own.  A :class:`Session` carries that context once:

* ``session.compile(model, workload)`` — one graph through the pass
  pipeline, raising on failure;
* ``session.compile_batch(jobs)`` — many jobs through the shared
  :class:`~repro.service.CompileService` (thread or process pool),
  failures isolated per job;
* ``session.explore(space)`` — a :mod:`repro.dse` run against the same
  cache, so a sweep warm-starts from every compile the session already
  did;
* ``session.replay(trace)`` — a request trace through the serving
  simulator (:mod:`repro.sim.replay`), same cache again;
* ``session.cache`` / ``session.cache_stats`` — the shared allocation
  cache all of the above feed.

Usage::

    from repro.api import Session

    with Session(hardware="dynaplasia", cache_dir="~/.cache/repro") as session:
        program = session.compile("resnet18")
        results = session.compile_batch(["bert", "vgg16"])
        sweep = session.explore(space, strategy="greedy", budget=16)

The historical entry points remain as deprecation shims over a session
and produce bit-identical programs (asserted in CI).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from .core.cache import AllocationCache, CacheStats
from .core.compiler import CMSwitchCompiler, CompilerOptions
from .core.program import CompiledProgram
from .hardware.deha import DualModeHardwareAbstraction
from .hardware.presets import get_preset
from .ir.graph import Graph
from .models.registry import build_model
from .models.workload import Workload
from .obs import (
    NULL_OBS,
    MetricsRegistry,
    Observability,
    Tracer,
    profile_report,
    write_chrome_trace,
    write_span_jsonl,
)
from .service import CompileJob, CompileJobResult, CompileService

__all__ = ["Session"]

#: Jobs a session accepts: full specs, bare model names, or built graphs.
JobLike = Union[CompileJob, str, Graph]


class Session:
    """One configured entry point over the whole compilation stack.

    A session owns the shared :class:`AllocationCache` (optionally
    disk-backed via ``cache_dir``), the worker-pool backend and the
    default hardware/options, and routes every public operation —
    single compiles, batches, design-space exploration, cache
    inspection — through them.  Sessions are cheap to construct and
    safe to share between threads (the underlying service and cache
    are).

    Args:
        hardware: Default target — a preset name or a
            :class:`DualModeHardwareAbstraction`.
        options: Default :class:`CompilerOptions` for :meth:`compile`
            (paper defaults when omitted; batch jobs default to the
            service's code-generation-off options unless the job or
            call says otherwise).
        cache: Shared allocation cache (mutually exclusive with
            ``cache_dir``).
        cache_dir: Directory of a persistent
            :class:`~repro.core.store.DiskCacheStore`; later sessions
            and worker processes warm-start from it.
        remote_cache: URL of a ``repro cache-server`` (or a constructed
            :class:`~repro.serve.remote.RemoteCacheStore`) — the
            networked third cache tier.  Lookups cascade memory → disk
            → remote; remote hits are promoted into the local tiers and
            fresh solves written through, so sessions on different
            machines share allocator solves.  An unreachable server
            degrades to cold compiles, never errors.
        backend: ``"thread"`` (default) or ``"process"`` — see
            :class:`CompileService` for the sharing contract.
        max_workers: Default pool width for batches.
        solve_jobs: Worker threads for window-allocation solves.  The
            session's service builds **one** shared
            :class:`~repro.core.solverpool.SolverPool` used by every
            compile and batch job, so a cold compile's DP saturates the
            budget while concurrent jobs still share it (never multiply
            it).  ``None`` keeps the sequential solve path.  Closed by
            :meth:`close`.
        use_cache: Disable the shared cache entirely (A/B timing).
        trace: Telemetry switch (off by default — the disabled path is a
            measured-overhead-free no-op).  Accepts ``True`` (collect
            spans + metrics in a fresh :class:`~repro.obs.Observability`
            bundle), a :class:`~repro.obs.Tracer` or
            :class:`~repro.obs.Observability` to bring your own, or a
            path, which additionally becomes :meth:`export_trace`'s
            default output file.  Everything the session runs — compiles,
            batches, DSE sweeps, replays — records into the one bundle.
    """

    def __init__(
        self,
        hardware: Union[str, DualModeHardwareAbstraction] = "dynaplasia",
        options: Optional[CompilerOptions] = None,
        cache: Optional[AllocationCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        remote_cache: Optional[Union[str, object]] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        solve_jobs: Optional[int] = None,
        use_cache: bool = True,
        trace: Union[None, bool, str, Path, Tracer, Observability] = None,
    ) -> None:
        self.hardware = (
            get_preset(hardware) if isinstance(hardware, str) else hardware
        )
        self._trace_path: Optional[Path] = None
        if isinstance(trace, Observability):
            self.obs = trace
        elif isinstance(trace, Tracer):
            self.obs = Observability(tracer=trace, metrics=MetricsRegistry())
        elif isinstance(trace, (str, Path)):
            self.obs = Observability.create()
            self._trace_path = Path(trace)
        elif trace:
            self.obs = Observability.create()
        else:
            self.obs = NULL_OBS
        # Whether the caller pinned session-wide options matters for
        # batches: an explicit choice must govern every entry point, but
        # the *implicit* defaults differ by entry point (interactive
        # compiles keep code generation on, batch jobs historically run
        # with it off) and silently forcing one onto the other would
        # change batch behaviour.
        self._options_given = options is not None
        self.options = options or CompilerOptions()
        self.service = CompileService(
            cache=cache,
            cache_dir=cache_dir,
            remote_cache=remote_cache,
            backend=backend,
            max_workers=max_workers,
            solve_jobs=solve_jobs,
            use_cache=use_cache,
            obs=self.obs,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release held resources (solver pool, remote-cache sockets).

        Idempotent.  The remote client reconnects on the next lookup,
        but the solver pool is shut down for good: compiles after
        ``close()`` on a session that had ``solve_jobs`` set will raise.
        """
        self.service.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # single compile
    # ------------------------------------------------------------------ #
    def compile(
        self,
        model: Union[str, Graph],
        workload: Optional[Workload] = None,
        options: Optional[CompilerOptions] = None,
        hardware: Optional[Union[str, DualModeHardwareAbstraction]] = None,
    ) -> CompiledProgram:
        """Compile one model (or pre-built graph) through the pipeline.

        Unlike :meth:`compile_batch` this raises on failure — it is the
        interactive, "give me the program or tell me why not" call.

        Args:
            model: Registered model name or a :class:`Graph`.
            workload: Workload for model building (ignored for graphs;
                defaults to ``Workload()``).
            options: Per-call override of the session's default options.
            hardware: Per-call override of the session's hardware.

        Raises:
            KeyError: Unknown model name.
            NoFeasiblePlanError: No feasible plan exists for the graph.
        """
        graph = (
            model
            if isinstance(model, Graph)
            else build_model(model, workload or Workload())
        )
        target = self.hardware if hardware is None else (
            get_preset(hardware) if isinstance(hardware, str) else hardware
        )
        compiler = CMSwitchCompiler(
            target,
            options or self.options,
            cache=self.cache,
            obs=self.obs,
            solver_pool=self.service.solver_pool,
        )
        return compiler.compile(graph)

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def job(
        self,
        model: Union[str, Graph],
        workload: Optional[Workload] = None,
        options: Optional[CompilerOptions] = None,
        label: Optional[str] = None,
    ) -> CompileJob:
        """A :class:`CompileJob` against this session's hardware.

        Options resolve like :meth:`compile`: the per-call value wins,
        then session options *explicitly* passed to the constructor;
        with neither, the job carries ``None`` and the service applies
        its batch default (code generation off).
        """
        if options is None and self._options_given:
            options = self.options
        return CompileJob(
            model,
            workload=workload,
            hardware=self.hardware,
            options=options,
            label=label,
        )

    def compile_batch(
        self,
        jobs: Sequence[JobLike],
        max_workers: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List[CompileJobResult]:
        """Compile many jobs concurrently against the shared cache.

        Args:
            jobs: :class:`CompileJob` specs; bare model names / graphs
                are coerced to jobs on the session's hardware.
            max_workers: Pool-width override for this batch.
            backend: ``"thread"`` / ``"process"`` override.

        Returns:
            One :class:`CompileJobResult` per job, input order kept; a
            failing job is captured in its result, never raised.
        """
        coerced = [
            job if isinstance(job, CompileJob) else self.job(job) for job in jobs
        ]
        return self.service.compile_batch(
            coerced, max_workers=max_workers, backend=backend
        )

    # ------------------------------------------------------------------ #
    # trace replay
    # ------------------------------------------------------------------ #
    def replay(
        self,
        trace,
        options: Optional[CompilerOptions] = None,
        hardware: Optional[Union[str, DualModeHardwareAbstraction]] = None,
    ):
        """Replay a request :class:`~repro.sim.traces.Trace` on this session.

        Compiles each distinct (model, workload) of the trace once
        through the session's :class:`CompileService` — so repeated
        replays and everything else the session compiles share one
        allocation cache — and schedules the programs over virtual time
        with dual-mode re-provisioning charged between requests.  See
        :class:`~repro.sim.replay.ReplaySimulator`.

        Args:
            trace: The trace to replay.
            options: Per-call override of the session's options (code
                generation is forced off either way — replay only
                consumes predicted timings).
            hardware: Per-call override of the session's hardware.

        Returns:
            The :class:`~repro.sim.replay.ReplayResult`.
        """
        from .sim.replay import ReplaySimulator

        target = self.hardware if hardware is None else (
            get_preset(hardware) if isinstance(hardware, str) else hardware
        )
        if options is None and self._options_given:
            options = self.options
        simulator = ReplaySimulator(
            hardware=target, service=self.service, options=options, obs=self.obs
        )
        return simulator.run(trace)

    # ------------------------------------------------------------------ #
    # design-space exploration
    # ------------------------------------------------------------------ #
    def explore(
        self,
        space,
        strategy="grid",
        objective: str = "latency",
        fidelity: str = "compile",
        budget: Optional[int] = None,
        state=None,
        batch_size: int = 8,
        seed: int = 0,
        max_workers: Optional[int] = None,
        trace=None,
    ):
        """Explore a :class:`~repro.dse.DesignSpace` against this cache.

        Builds a :class:`~repro.dse.DSERunner` sharing the session's
        allocation cache and backend, so exploration warm-starts from
        (and contributes back to) every other compile the session
        serves.

        Args:
            space: The :class:`~repro.dse.DesignSpace` to explore.
            strategy: Strategy instance or name (``grid`` / ``random``
                / ``greedy`` / ``successive-halving``).
            objective: ``"latency"``, ``"energy"`` or ``"trace_p99"``
                (requires ``trace``).
            fidelity: Evaluation tier — ``"compile"`` (default, the
                full pipeline), ``"analytical"`` (closed-form lower
                bounds, zero allocator solves), ``"greedy"`` (the full
                pipeline with the heuristic allocator — real plans,
                zero MILP solves), ``"cached"`` (evaluate only what the
                persistent store already knows) or ``"auto"``
                (multi-fidelity successive-halving ladder: analytical
                rung 0, survivors climb greedy then compile fidelity).
                See :mod:`repro.eval`.
            budget: Max design points to cover (whole space if None).
            state: Optional resumable :class:`~repro.dse.RunState`.
            batch_size: Points asked from the strategy per iteration.
            seed: Seed used when ``strategy`` is given by name.
            max_workers: Compile-pool width override.
            trace: Request :class:`~repro.sim.traces.Trace` replayed per
                surviving point when ``objective="trace_p99"``.

        Returns:
            The :class:`~repro.dse.DSEResult`.
        """
        from .dse import DSERunner

        runner = DSERunner(
            space,
            strategy=strategy,
            objective=objective,
            fidelity=fidelity,
            cache=self.cache,
            backend=self.backend,
            max_workers=(
                max_workers if max_workers is not None else self.service.max_workers
            ),
            state=state,
            batch_size=batch_size,
            seed=seed,
            trace=trace,
            obs=self.obs,
        )
        return runner.run(budget=budget)

    # ------------------------------------------------------------------ #
    # cache access
    # ------------------------------------------------------------------ #
    @property
    def cache(self) -> Optional[AllocationCache]:
        """The shared allocation cache (None when caching is disabled)."""
        return self.service.cache

    @property
    def cache_dir(self) -> Optional[str]:
        """The persistent cache directory, when one is configured."""
        return self.service.cache_dir

    @property
    def backend(self) -> str:
        """The session's worker-pool backend."""
        return self.service.backend

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregate cache counters across everything this session ran."""
        return self.service.cache_stats

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    @property
    def tracer(self):
        """The session's span tracer (a no-op unless ``trace`` was set)."""
        return self.obs.tracer

    @property
    def metrics(self):
        """The session's metrics registry (no-op unless ``trace`` set)."""
        return self.obs.metrics

    def export_trace(self, path: Union[None, str, Path] = None) -> Path:
        """Write everything recorded so far as a Chrome/Perfetto trace.

        Args:
            path: Output file; defaults to the path given as
                ``Session(trace=...)``.

        Raises:
            ValueError: Tracing is off, or no path is available.
        """
        target = Path(path) if path is not None else self._trace_path
        if target is None:
            raise ValueError("no trace path: pass one here or as Session(trace=path)")
        if not self.obs.tracer.enabled:
            raise ValueError("tracing is off; construct the Session with trace=...")
        return write_chrome_trace(target, self.obs.tracer.spans())

    def write_span_log(self, path: Union[str, Path]) -> Path:
        """Write the recorded spans as JSONL (one object per span)."""
        return write_span_jsonl(path, self.obs.tracer.spans())

    def profile_report(self, top: int = 15) -> str:
        """Text profile: top spans by total wall + the metrics table."""
        return profile_report(self.obs.tracer.spans(), self.obs.metrics, top=top)

    def describe(self) -> str:
        """One-line session summary for logs."""
        cache = (
            "off"
            if self.cache is None
            else (self.cache_dir or "in-memory")
        )
        return (
            f"Session(hardware={self.hardware.name!r}, backend={self.backend!r}, "
            f"cache={cache})"
        )
