"""Parity and tripwire tests for the vectorised hot path (ISSUE 6).

Three families:

* **Kernel parity** — the vectorised candidate enumeration, batched
  Eq. 10 latency model and incremental greedy allocator must reproduce
  the frozen scalar bodies in :mod:`repro.core._reference` exactly
  (values, ordering, tie-breaks), because compiled-program fingerprints
  are asserted bit-identical across the rewrite.
* **Deliberate divergence** — the one behaviour change the rewrite was
  allowed: an all-infeasible candidate grid now yields ``[]`` instead of
  the scalar body's useless infinite-latency fallback candidate.
* **Reuse tripwires** — the greedy fidelity rung must never touch the
  MILP solver, and a memoised DSE sweep must perform strictly fewer
  solves than compiling every point independently cold.
"""

from __future__ import annotations

import inspect
import math

import numpy as np
import pytest

from repro.core import CMSwitchCompiler, CompilerOptions
from repro.core._reference import (
    reference_candidate_allocations,
    reference_compile,
    reference_greedy_allocate,
    reference_refine_with_spare_arrays,
)
from repro.core.allocation import (
    GreedyAllocator,
    MIPAllocator,
    allocate_segment,
    candidate_allocations,
    refine_with_spare_arrays,
    segment_fits,
)
from repro.core.memo import SolveMemo
from repro.core.segmentation import (
    first_window_cache_key,
    flatten_graph,
    window_cache_key,
)
from repro.cost import (
    OperatorAllocation,
    operator_latency_cycles,
    profile_operator,
)
from repro.cost.latency import INFEASIBLE_LATENCY, operator_latency_cycles_batch
from repro.dse import DesignSpace, DSERunner
from repro.hardware import small_test_chip
from repro.ir import Linear, MatMul, TensorSpec
from repro.models import Workload, build_model


def linear_profile(name, m=32, k=128, n=128):
    op = Linear(
        name,
        input=TensorSpec(f"{name}_x", (m, k)),
        output=TensorSpec(f"{name}_y", (m, n)),
        weight=TensorSpec(f"{name}_w", (k, n)),
    )
    return profile_operator(op)


def matmul_profile(name, b=4, m=16, k=64, n=64):
    op = MatMul(
        name,
        lhs=TensorSpec(f"{name}_a", (b, m, k)),
        rhs=TensorSpec(f"{name}_b", (b, k, n)),
        output=TensorSpec(f"{name}_c", (b, m, n)),
    )
    return profile_operator(op)


PROFILES = [
    linear_profile("thin", 8, 64, 64),
    linear_profile("wide", 32, 256, 256),
    linear_profile("tall", 128, 512, 32),
    matmul_profile("attn", 4, 32, 64, 64),
    matmul_profile("big", 8, 64, 128, 128),
]


# ---------------------------------------------------------------------- #
# batched Eq. 10
# ---------------------------------------------------------------------- #
class TestBatchLatencyParity:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    def test_grid_matches_scalar_exactly(self, profile, small_chip):
        compute = np.arange(1, small_chip.num_arrays + 1)
        memory = np.arange(0, small_chip.num_arrays)
        grid = operator_latency_cycles_batch(
            profile, compute[:, None], memory[None, :], small_chip
        )
        for i, com in enumerate(compute):
            for j, mem in enumerate(memory):
                scalar = operator_latency_cycles(
                    profile, OperatorAllocation(int(com), int(mem)), small_chip
                )
                assert grid[i, j] == scalar  # bitwise, not approx

    def test_zero_compute_is_infeasible(self, small_chip):
        profile = PROFILES[0]
        grid = operator_latency_cycles_batch(
            profile, np.array([0]), np.array([0]), small_chip
        )
        assert grid[0] == INFEASIBLE_LATENCY

    def test_broadcasting_matches_flat_enumeration(self, small_chip):
        profile = PROFILES[3]
        compute = np.array([1, 2, 4])
        memory = np.array([0, 1])
        broadcast = operator_latency_cycles_batch(
            profile, compute[:, None], memory[None, :], small_chip
        )
        flat = operator_latency_cycles_batch(
            profile,
            np.repeat(compute, len(memory)),
            np.tile(memory, len(compute)),
            small_chip,
        )
        assert np.array_equal(broadcast.ravel(), flat)


# ---------------------------------------------------------------------- #
# candidate enumeration
# ---------------------------------------------------------------------- #
class TestCandidateParity:
    @pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
    @pytest.mark.parametrize("allow_memory_mode", [True, False])
    def test_matches_scalar_reference(self, profile, allow_memory_mode, small_chip):
        vectorised = candidate_allocations(
            profile,
            small_chip,
            small_chip.num_arrays,
            allow_memory_mode=allow_memory_mode,
        )
        reference = reference_candidate_allocations(
            profile,
            small_chip,
            small_chip.num_arrays,
            allow_memory_mode=allow_memory_mode,
        )
        assert vectorised == reference

    @pytest.mark.parametrize("max_arrays", [1, 2, 3, 5, 8])
    def test_matches_scalar_reference_across_budgets(self, max_arrays, small_chip):
        for profile in PROFILES:
            assert candidate_allocations(
                profile, small_chip, max_arrays
            ) == reference_candidate_allocations(profile, small_chip, max_arrays)

    def test_thinning_matches_scalar_reference(self, small_chip):
        profile = linear_profile("dense", 64, 512, 512)
        for cap in (1, 2, 3):
            vectorised = candidate_allocations(
                profile, small_chip, small_chip.num_arrays, max_candidates=cap
            )
            reference = reference_candidate_allocations(
                profile, small_chip, small_chip.num_arrays, max_candidates=cap
            )
            assert vectorised == reference
            assert len(vectorised) <= cap

    def test_all_infeasible_grid_returns_empty_not_fallback(
        self, small_chip, monkeypatch
    ):
        """The dead-fallback regression: every grid point infinite => [].

        The scalar body kept one useless infinite-latency candidate in
        that case; the rewrite's contract is an empty list (the same
        verdict as "does not fit"), so the MILP never selects a
        candidate that cannot finish.  Constructible hardware always has
        positive bandwidth, so the degenerate grid is forced here by
        stubbing the latency model.
        """
        profile = PROFILES[0]
        all_inf_batch = lambda prof, com, mem, hw, d_main_share=1.0: np.full(
            np.broadcast(np.asarray(com), np.asarray(mem)).shape, INFEASIBLE_LATENCY
        )
        monkeypatch.setattr(
            "repro.core.allocation.operator_latency_cycles_batch", all_inf_batch
        )
        monkeypatch.setattr(
            "repro.cost.latency.operator_latency_cycles",
            lambda prof, alloc, hw, d_main_share=1.0: INFEASIBLE_LATENCY,
        )
        assert candidate_allocations(profile, small_chip, small_chip.num_arrays) == []
        # The frozen reference keeps exhibiting the old fallback bug.
        fallback = reference_candidate_allocations(
            profile, small_chip, small_chip.num_arrays
        )
        assert len(fallback) == 1
        assert math.isinf(fallback[0].latency_cycles)

    def test_oversized_operator_still_returns_empty(self, small_chip):
        profile = linear_profile("huge", 4, 64 * 20, 64 * 20)
        assert candidate_allocations(profile, small_chip, small_chip.num_arrays) == []


# ---------------------------------------------------------------------- #
# greedy allocator + refinement
# ---------------------------------------------------------------------- #
class TestGreedyParity:
    SEGMENTS = [
        {"proj": linear_profile("proj", 32, 128, 128)},
        {
            "proj": linear_profile("proj", 32, 128, 128),
            "attn": matmul_profile("attn", 4, 32, 64, 64),
        },
        {
            "a": linear_profile("a", 8, 64, 64),
            "b": linear_profile("b", 16, 128, 64),
            "c": matmul_profile("c", 2, 16, 32, 32),
        },
    ]

    @pytest.mark.parametrize("index", range(len(SEGMENTS)))
    @pytest.mark.parametrize("allow_memory_mode", [True, False])
    def test_matches_scalar_reference(self, index, allow_memory_mode, small_chip):
        profiles = self.SEGMENTS[index]
        incremental = GreedyAllocator(allow_memory_mode=allow_memory_mode).allocate(
            profiles, small_chip
        )
        reference = reference_greedy_allocate(
            profiles, small_chip, allow_memory_mode=allow_memory_mode
        )
        assert incremental.allocations == reference.allocations
        assert incremental.latency_cycles == reference.latency_cycles
        assert incremental.feasible == reference.feasible

    @pytest.mark.parametrize("reserve", [0, 1, 2])
    def test_refinement_matches_scalar_reference(self, reserve, small_chip):
        profiles = self.SEGMENTS[1]
        seed = GreedyAllocator().allocate(profiles, small_chip)
        refined = refine_with_spare_arrays(
            seed, profiles, small_chip, reserve_arrays=reserve
        )
        reference = reference_refine_with_spare_arrays(
            seed, profiles, small_chip, reserve_arrays=reserve
        )
        assert refined.allocations == reference.allocations
        assert refined.latency_cycles == reference.latency_cycles


# ---------------------------------------------------------------------- #
# whole-compile parity: fingerprints AND reported solver statistics
# ---------------------------------------------------------------------- #
class TestCompileParity:
    @pytest.mark.parametrize("model", ["tiny-mlp", "tiny-cnn"])
    def test_pipeline_matches_frozen_reference(self, model, small_chip):
        graph = build_model(model, Workload(batch_size=1))
        options = CompilerOptions(generate_code=True)
        pipeline = CMSwitchCompiler(small_chip, options).compile(graph)
        frozen = reference_compile(graph, small_chip, options)
        assert pipeline.fingerprint() == frozen.fingerprint()
        # The vectorised kernels must not change the *reported* solver
        # work either — same solve count, same cache counters.
        for stat in (
            "allocator_solves",
            "allocation_cache_hits",
            "allocation_disk_hits",
        ):
            assert pipeline.stats[stat] == frozen.stats[stat], stat

    def test_segment_fits_lost_its_decoy_parameter(self):
        assert "allow_memory_mode" not in inspect.signature(segment_fits).parameters


# ---------------------------------------------------------------------- #
# window cache keys
# ---------------------------------------------------------------------- #
class TestWindowCacheKey:
    @pytest.fixture()
    def units(self, small_chip, tiny_cnn_graph):
        return flatten_graph(tiny_cnn_graph, small_chip)

    def test_first_window_is_the_start_special_case(self, units, small_chip):
        options = CompilerOptions()
        assert first_window_cache_key(units, small_chip, options) == window_cache_key(
            units, small_chip, options, start=0, end=0
        )

    def test_every_window_key_is_distinct_per_span(self, units, small_chip):
        options = CompilerOptions()
        keys = set()
        for start in range(len(units)):
            for end in range(start, len(units)):
                key = window_cache_key(units, small_chip, options, start=start, end=end)
                assert key is not None
                keys.add(key)
        spans = len(units) * (len(units) + 1) // 2
        assert len(keys) == spans

    def test_final_window_reserves_nothing(self, units, small_chip):
        options = CompilerOptions()
        last = len(units) - 1
        key = window_cache_key(units, small_chip, options, start=0, end=last)
        assert key.reserve_arrays == 0

    def test_out_of_range_windows_are_none(self, units, small_chip):
        options = CompilerOptions()
        assert window_cache_key([], small_chip, options) is None
        assert window_cache_key(units, small_chip, options, start=-1) is None
        assert window_cache_key(units, small_chip, options, start=0, end=len(units)) is None
        assert window_cache_key(units, small_chip, options, start=2, end=1) is None

    def test_key_reflects_the_options(self, units, small_chip):
        dual = window_cache_key(units, small_chip, CompilerOptions())
        fixed = window_cache_key(
            units, small_chip, CompilerOptions(allow_memory_mode=False)
        )
        greedy = window_cache_key(units, small_chip, CompilerOptions(use_milp=False))
        assert dual != fixed
        assert dual != greedy
        assert dual.engine == "milp" and greedy.engine == "greedy"


# ---------------------------------------------------------------------- #
# SolveMemo
# ---------------------------------------------------------------------- #
class CountingAllocator:
    """Wraps an allocator and counts real ``allocate`` invocations."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self.name = inner.name
        self.allow_memory_mode = getattr(inner, "allow_memory_mode", True)

    def allocate(self, profiles, hardware, pipelined=True):
        self.calls += 1
        return self.inner.allocate(profiles, hardware, pipelined=pipelined)


class TestSolveMemo:
    @pytest.fixture()
    def profiles(self):
        return {
            "proj": linear_profile("proj", 32, 128, 128),
            "attn": matmul_profile("attn", 4, 32, 64, 64),
        }

    def test_second_solve_is_served_from_the_memo(self, profiles, small_chip):
        memo = SolveMemo()
        engine = CountingAllocator(MIPAllocator())
        first = allocate_segment(profiles, small_chip, allocator=engine, memo=memo)
        second = allocate_segment(profiles, small_chip, allocator=engine, memo=memo)
        assert engine.calls == 1
        assert memo.hits == 1 and memo.misses == 1 and memo.stores == 1
        assert second.allocations == first.allocations
        assert second.latency_cycles == first.latency_cycles

    def test_cross_mode_hit_when_dual_solution_uses_no_memory(
        self, profiles, small_chip
    ):
        memo = SolveMemo()
        dual = CountingAllocator(MIPAllocator(allow_memory_mode=True))
        result = allocate_segment(profiles, small_chip, allocator=dual, memo=memo)
        memory_free = all(
            a.memory_arrays == 0 for a in result.allocations.values()
        )
        fixed = CountingAllocator(MIPAllocator(allow_memory_mode=False))
        again = allocate_segment(profiles, small_chip, allocator=fixed, memo=memo)
        if memory_free:
            # The dual-mode optimum lies inside the fixed-mode space, so
            # the fixed-mode request is answered without a solve.
            assert fixed.calls == 0
            assert again.allocations == result.allocations
        else:
            assert fixed.calls == 1

    def test_memo_never_stores_partial_foreign_results(self, profiles, small_chip):
        from repro.core.allocation import AllocationResult

        memo = SolveMemo()
        key = SolveMemo.make_key(
            profiles,
            small_chip,
            engine="milp",
            pipelined=True,
            refine=True,
            allow_memory_mode=True,
            reserve_arrays=0,
        )
        partial = AllocationResult(
            {"proj": OperatorAllocation(1, 0)}, 123.0, True, "milp"
        )
        memo.put(key, profiles, partial)
        assert len(memo) == 0
        assert memo.lookup(key, list(profiles)) is None

    def test_stats_dict_shape(self):
        memo = SolveMemo()
        assert memo.stats_dict() == {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "entries": 0,
        }


# ---------------------------------------------------------------------- #
# reuse tripwires
# ---------------------------------------------------------------------- #
def _two_point_space() -> DesignSpace:
    """One model on one chip, dual vs fixed mode: maximal window overlap."""
    return DesignSpace(
        models=["tiny-mlp"],
        base_hardware=small_test_chip(),
        workloads=[Workload(batch_size=1)],
        option_axes={"allow_memory_mode": [True, False]},
    )


class TestReuseTripwires:
    def test_memoised_sweep_beats_independent_cold_compiles(self):
        space = _two_point_space()
        independent = 0
        for point in space.points():
            graph = build_model(point.model, point.workload)
            program = CMSwitchCompiler(
                point.hardware, point.options, cache=None
            ).compile(graph)
            independent += program.stats["allocator_solves"]
        runner = DSERunner(space, strategy="grid")
        result = runner.run()
        assert result.evaluated == space.size
        assert result.allocator_solves < independent  # strictly fewer
        assert runner.solve_memo.hits > 0

    def test_memo_counters_reflect_per_run_reuse(self):
        runner = DSERunner(_two_point_space(), strategy="grid")
        runner.run()
        stats = runner.solve_memo.stats_dict()
        # Overwrites of an existing key (a shared-cache hit promoted
        # into the memo) count as stores, so stores >= distinct entries.
        assert stats["stores"] >= stats["entries"] > 0
        assert stats["hits"] > 0

    def test_greedy_rung_performs_zero_milp_solves(self, monkeypatch):
        def forbidden(*args, **kwargs):  # pragma: no cover - tripwire
            raise AssertionError("the greedy fidelity rung touched the MILP solver")

        monkeypatch.setattr(
            "repro.core.allocation.solve_canonical_milp", forbidden
        )
        monkeypatch.setattr(MIPAllocator, "allocate", forbidden)
        result = DSERunner(_two_point_space(), strategy="grid", fidelity="greedy").run()
        assert result.evaluated == 2
        for record in result.new_records:
            assert record.fidelity == "greedy"
            assert record.status == "evaluated"
            assert not record.failed
