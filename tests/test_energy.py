"""Tests for the energy-estimation extension."""

import pytest

from repro.baselines import CIMMLCCompiler
from repro.core import CMSwitchCompiler, CompilerOptions
from repro.cost.energy import EnergyParameters, EnergyReport, compare_energy, estimate_energy
from repro.hardware import prime, small_test_chip
from repro.models import Workload, build_model


@pytest.fixture(scope="module")
def transformer_programs(small_chip, tiny_transformer_graph):
    options = CompilerOptions(generate_code=False)
    return {
        "cmswitch": CMSwitchCompiler(small_chip, options).compile(tiny_transformer_graph),
        "cim-mlc": CIMMLCCompiler(small_chip).compile(tiny_transformer_graph),
    }


class TestEnergyParameters:
    def test_defaults_positive(self):
        params = EnergyParameters()
        assert params.mac_pj > 0
        assert params.offchip_pj_per_element > params.buffer_pj_per_element

    def test_scaled_for_reram_raises_write_energy(self):
        params = EnergyParameters()
        scaled = params.scaled_for(prime())
        assert scaled.array_write_pj_per_element > params.array_write_pj_per_element

    def test_scaled_for_edram_is_identity(self, small_chip):
        edram = small_chip.with_overrides(write_energy_factor=1.0)
        params = EnergyParameters()
        assert params.scaled_for(edram) == params


class TestEnergyReport:
    def test_totals_compose(self):
        report = EnergyReport(
            graph_name="g",
            compute_pj=10.0,
            array_access_pj=5.0,
            weight_write_pj=2.0,
            buffer_pj=1.0,
            offchip_pj=20.0,
            mode_switch_pj=0.5,
            leakage_pj=3.0,
            block_repeat=2.0,
        )
        assert report.dynamic_pj == pytest.approx(38.5)
        assert report.total_pj == pytest.approx(41.5)
        assert report.end_to_end_mj == pytest.approx(2 * 41.5 * 1e-9)
        assert sum(report.breakdown().values()) == pytest.approx(report.total_pj)

    def test_summary_mentions_energy(self):
        report = EnergyReport(graph_name="g", compute_pj=1.0)
        assert "mJ" in report.summary()


class TestEstimateEnergy:
    def test_positive_categories(self, transformer_programs):
        report = estimate_energy(transformer_programs["cmswitch"])
        assert report.compute_pj > 0
        assert report.offchip_pj > 0
        assert report.leakage_pj > 0
        assert report.total_pj == pytest.approx(report.dynamic_pj + report.leakage_pj)

    def test_compute_energy_matches_mac_count(self, transformer_programs, tiny_transformer_graph):
        params = EnergyParameters()
        report = estimate_energy(transformer_programs["cmswitch"], parameters=params)
        macs = sum(
            profile.macs
            for segment in transformer_programs["cmswitch"].segments
            for profile in segment.profiles.values()
        )
        assert report.compute_pj == pytest.approx(macs * params.mac_pj)

    def test_dual_mode_reduces_offchip_energy(self, transformer_programs):
        cms = estimate_energy(transformer_programs["cmswitch"])
        mlc = estimate_energy(transformer_programs["cim-mlc"])
        assert cms.offchip_pj <= mlc.offchip_pj * 1.001

    def test_compare_energy_helper(self, transformer_programs):
        reports = compare_energy(transformer_programs)
        assert set(reports) == {"cmswitch", "cim-mlc"}
        assert all(report.total_pj > 0 for report in reports.values())

    def test_custom_parameters_scale_results(self, transformer_programs):
        base = estimate_energy(transformer_programs["cmswitch"], parameters=EnergyParameters())
        doubled = estimate_energy(
            transformer_programs["cmswitch"],
            parameters=EnergyParameters(mac_pj=0.1),
        )
        assert doubled.compute_pj == pytest.approx(2 * base.compute_pj)

    def test_block_repeat_propagates(self, small_chip):
        graph = build_model("tiny-transformer", Workload(batch_size=1, seq_len=16))
        graph.metadata["block_repeat"] = 5.0
        program = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False)).compile(graph)
        report = estimate_energy(program)
        assert report.block_repeat == 5.0
        assert report.end_to_end_mj == pytest.approx(report.total_pj * 5.0 * 1e-9)
