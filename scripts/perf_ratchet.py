"""Performance ratchet: fail CI when the cold compile path regresses.

The repository commits a measured baseline, ``BENCH_compile_cold.json``
(seeded from ``benchmarks/bench_fig18_compile_time.py --quick``), which
records the cold-pass wall time and allocator-solve count of the
standard compile-time smoke.  CI re-measures and compares::

    PYTHONPATH=src python benchmarks/bench_fig18_compile_time.py \
        --quick --json-out BENCH_compile_cold_now.json
    python scripts/perf_ratchet.py BENCH_compile_cold_now.json

Two independent checks, because they fail for different reasons:

* **Solve count** (exact) — ``allocator_solves_cold`` is deterministic:
  the same models on the same chip enumerate the same allocation
  windows.  Any increase means the compiler started solving more
  sub-problems (a cache-key regression, a lost dedup) and fails the
  ratchet outright, with no tolerance.
* **Wall time** (tolerance-gated) — cold ``cold_seconds`` may exceed the
  baseline by at most ``--tolerance`` (default 20%).  CI machines are
  noisy, so the tolerance is generous; a vectorisation or solver-path
  regression shows up far above it.

The warm pass is already asserted elsewhere (hit rate >= 95%, zero warm
solves); the ratchet only guards the cold path the ISSUE-6 vectorisation
sped up.  To *advance* the ratchet after a deliberate improvement,
re-seed the baseline file with the bench command above and commit it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_compile_cold.json"

#: Fields the ratchet needs from both records.
REQUIRED = ("cold_seconds", "allocator_solves_cold")


def load_record(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    missing = [field for field in REQUIRED if field not in record]
    if missing:
        raise SystemExit(f"error: {path} is missing fields: {', '.join(missing)}")
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "measurement", type=Path, help="fresh BENCH_*.json record to check"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline record (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional wall-time regression (default: 0.20 = +20%%)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    baseline = load_record(args.baseline)
    measured = load_record(args.measurement)

    base_solves = int(baseline["allocator_solves_cold"])
    now_solves = int(measured["allocator_solves_cold"])
    base_seconds = float(baseline["cold_seconds"])
    now_seconds = float(measured["cold_seconds"])
    budget = base_seconds * (1.0 + args.tolerance)

    print(
        f"perf ratchet (baseline {args.baseline.name}):\n"
        f"  solves : {now_solves} measured vs {base_solves} baseline (exact)\n"
        f"  wall   : {now_seconds:.3f} s measured vs {base_seconds:.3f} s "
        f"baseline (budget {budget:.3f} s = +{100 * args.tolerance:.0f}%)"
    )

    failures = []
    if now_solves > base_solves:
        failures.append(
            f"allocator_solves_cold regressed: {now_solves} > {base_solves} "
            "(solve counts are deterministic; this is a real regression)"
        )
    if now_seconds > budget:
        failures.append(
            f"cold_seconds regressed: {now_seconds:.3f} s > {budget:.3f} s "
            f"({base_seconds:.3f} s +{100 * args.tolerance:.0f}%)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: cold compile path within the ratchet")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
