"""Section 5.5: dual-mode switch overhead and PRIME scalability.

* The mode-switch process contributes only a few percent of the total
  execution time (the paper reports 3-5 % for the full switch process and
  far less for the bare driver reconfiguration).
* Retargeting the compiler to a PRIME-like ReRAM chip still yields gains
  over CIM-MLC (the paper reports 1.48x / 1.09x / 1.10x for BERT /
  LLaMA2-7B / OPT-13B).
"""

import pytest

from conftest import record

from repro.experiments import prime_scalability, switch_overhead
from repro.experiments.overheads import render_prime_report, render_switch_report


@pytest.mark.benchmark(group="sec5.5")
def test_sec55_switch_overhead(benchmark, chip):
    """Share of execution time spent on mode switching (§5.5)."""
    rows = benchmark.pedantic(lambda: switch_overhead(hardware=chip), rounds=1, iterations=1)
    record(benchmark, rows, render_switch_report(rows))
    for row in rows:
        # Driver reconfiguration alone is well below 5 % of execution time.
        assert row["switch_share"] <= 0.05


@pytest.mark.benchmark(group="sec5.5")
def test_sec55_prime_scalability(benchmark):
    """CMSwitch vs CIM-MLC on the PRIME-like ReRAM target (§5.5)."""
    rows = benchmark.pedantic(prime_scalability, rounds=1, iterations=1)
    record(benchmark, rows, render_prime_report(rows))
    for row in rows:
        assert row["speedup_vs_cim-mlc"] >= 0.99
